//! Time-ordered event queue with FIFO tie-breaking and cancellation,
//! implemented as a hierarchical timing wheel.
//!
//! The queue is the innermost loop of every simulation in the workspace:
//! the master platform loop, the IXP pipeline, the PCIe link, the
//! coordination mailboxes and the accelerator all drain through one. At
//! packet-rate event densities the classic `BinaryHeap + HashSet`
//! implementation pays a hash insert on every `schedule` and a hash
//! remove (plus a top sweep) on every `pop`; the wheel replaces both with
//! O(1) array work:
//!
//! * **Near wheel** — `BUCKETS` fixed-width buckets of `BUCKET_WIDTH`
//!   nanoseconds each, covering a ~1 ms window from the wheel cursor.
//!   Scheduling into the window is a `Vec::push` into the bucket indexed
//!   by `(time / width) % BUCKETS`; an occupancy bitmap finds the next
//!   non-empty bucket in O(words) regardless of sparsity.
//! * **Imminent heap** (`cur`) — the entries of the cursor's own bucket,
//!   kept as a tiny binary heap ordered by `(time, seq)` so pops inside
//!   one bucket window come out in exact global order.
//! * **Overflow heap** (`far`) — events beyond the wheel span. As the
//!   cursor advances, due overflow entries migrate into the wheel.
//! * **Slab with generation tags** — payloads live in a slab; buckets and
//!   heaps store 24-byte `(time, seq, slot, gen)` entries. An
//!   [`EventKey`] packs `(slot, gen)`, so `cancel` is a bounds check and
//!   a generation compare — no hashing — and a stale entry anywhere in
//!   the structure is recognized by its generation mismatch and skipped.

use crate::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of near-wheel buckets (power of two).
const BUCKETS: usize = 512;
/// log2 of the bucket width in nanoseconds (2^11 = 2.048 µs).
const WIDTH_SHIFT: u32 = 11;
/// Bucket width in nanoseconds.
const BUCKET_WIDTH: u64 = 1 << WIDTH_SHIFT;
/// The wheel covers `[wheel_start, wheel_start + SPAN)` — just over 1 ms.
const SPAN: u64 = (BUCKETS as u64) << WIDTH_SHIFT;
/// Words in the bucket-occupancy bitmap.
const WORDS: usize = BUCKETS / 64;

/// An opaque handle identifying a scheduled event, usable to cancel it.
///
/// A key packs the event's slab slot and that slot's generation at
/// scheduling time; once the event pops or is cancelled the generation
/// advances, so stale keys are always rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

impl EventKey {
    fn new(slot: u32, gen: u32) -> Self {
        EventKey(((gen as u64) << 32) | slot as u64)
    }
    fn slot(self) -> u32 {
        self.0 as u32
    }
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A 24-byte index entry stored in buckets and heaps; the payload stays
/// in the slab. `(slot, gen)` identifies the slab record (a mismatch
/// marks a tombstone), `(time, seq)` gives the deterministic total order.
#[derive(Debug, Clone, Copy)]
struct Entry {
    time: Nanos,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Debug)]
struct Slot<E> {
    /// Bumped every time the slot is freed; an index entry whose `gen`
    /// does not match is a tombstone.
    gen: u32,
    /// The event's scheduled time while occupied (drives the cached-head
    /// check in `cancel`).
    time: Nanos,
    event: Option<E>,
}

/// A discrete-event queue ordered by time.
///
/// Two events scheduled for the same instant pop in the order they were
/// scheduled (FIFO), which keeps simulations deterministic. Events can be
/// cancelled by [`EventKey`]. The head of the queue is maintained eagerly
/// on every mutation, so [`peek_time`](Self::peek_time) is a read-only
/// O(1) load — it is the cached event horizon the master loop polls every
/// iteration. Cancelled entries become tombstones that are compacted
/// wholesale once they outnumber live entries, keeping heavy `cancel()`
/// traffic from degrading `pop` over long runs.
///
/// # Example
///
/// ```
/// use simcore::{EventQueue, Nanos};
///
/// let mut q = EventQueue::new();
/// let _k1 = q.schedule(Nanos::from_micros(10), 'a');
/// let k2 = q.schedule(Nanos::from_micros(10), 'b');
/// q.cancel(k2);
/// assert_eq!(q.pop(), Some((Nanos::from_micros(10), 'a')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Near-wheel buckets; the cursor's own bucket is always empty (its
    /// entries live in `cur`).
    near: Vec<Vec<Entry>>,
    /// Bit i set ⇔ `near[i]` is non-empty.
    occupied: [u64; WORDS],
    /// Entries with `time < wheel_start + BUCKET_WIDTH` (including any
    /// scheduled in the past), ordered by `(time, seq)`.
    cur: BinaryHeap<Reverse<Entry>>,
    /// Entries beyond the wheel span, ordered by `(time, seq)`.
    far: BinaryHeap<Reverse<Entry>>,
    /// Start of the cursor bucket's window; always a multiple of
    /// `BUCKET_WIDTH`.
    wheel_start: u64,
    /// Index entries physically stored in `near` (incl. tombstones).
    near_stored: usize,
    /// Live (non-cancelled, non-popped) events.
    len: usize,
    /// Index entries physically stored anywhere (incl. tombstones).
    stored: usize,
    /// Cached minimum live time; `None` iff the queue is empty.
    head: Option<Nanos>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            near: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            cur: BinaryHeap::new(),
            far: BinaryHeap::new(),
            wheel_start: 0,
            near_stored: 0,
            len: 0,
            stored: 0,
            head: None,
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`, returning a cancellation
    /// key.
    pub fn schedule(&mut self, time: Nanos, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                let rec = &mut self.slots[s as usize];
                rec.time = time;
                rec.event = Some(event);
                s
            }
            None => {
                self.slots.push(Slot { gen: 0, time, event: Some(event) });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.insert(Entry { time, seq, slot, gen });
        self.len += 1;
        self.head = Some(match self.head {
            Some(h) => h.min(time),
            None => time,
        });
        EventKey::new(slot, gen)
    }

    /// Routes an index entry to `cur`, a near bucket, or `far`.
    fn insert(&mut self, e: Entry) {
        self.stored += 1;
        let t = e.time.0;
        if t < self.wheel_start.saturating_add(BUCKET_WIDTH) {
            self.cur.push(Reverse(e));
        } else if t < self.wheel_start.saturating_add(SPAN) {
            let idx = ((t >> WIDTH_SHIFT) as usize) & (BUCKETS - 1);
            self.near[idx].push(e);
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.near_stored += 1;
        } else {
            self.far.push(Reverse(e));
        }
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (it will never be popped), `false` if it had already
    /// popped or was cancelled before.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let s = key.slot() as usize;
        if s >= self.slots.len() {
            return false;
        }
        let rec = &mut self.slots[s];
        if rec.gen != key.gen() || rec.event.is_none() {
            return false;
        }
        let time = rec.time;
        rec.event = None;
        rec.gen = rec.gen.wrapping_add(1);
        self.free.push(key.slot());
        self.len -= 1;
        if self.len == 0 {
            self.reset_storage();
        } else if Some(time) == self.head {
            self.fix_head();
        }
        self.maybe_compact();
        true
    }

    /// The time of the earliest pending (non-cancelled) event.
    ///
    /// The head is maintained eagerly on `schedule`/`cancel`/`pop`, so this
    /// is a read-only O(1) load.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.head
    }

    /// Removes and returns the earliest pending event with its time.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        if self.len == 0 {
            return None;
        }
        self.advance_to_head();
        loop {
            let Reverse(e) = self.cur.pop().expect("len > 0: a live entry is reachable");
            self.stored -= 1;
            let rec = &mut self.slots[e.slot as usize];
            if rec.gen != e.gen {
                continue; // tombstone
            }
            let event = rec.event.take().expect("generation-matched slot is occupied");
            rec.gen = rec.gen.wrapping_add(1);
            self.free.push(e.slot);
            self.len -= 1;
            if self.len == 0 {
                self.reset_storage();
            } else {
                self.fix_head();
            }
            return Some((e.time, event));
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no pending events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index entries physically stored, including cancelled tombstones that
    /// have not been swept or compacted yet (diagnostics; tests assert the
    /// compaction bound through this).
    pub fn storage_len(&self) -> usize {
        self.stored
    }

    /// Pops the head event if it is due at or before `now`, appending it
    /// (with its timestamp) to `out`. One event per call: equal-time
    /// events keep their FIFO order across successive advances, so the
    /// master loop's tie-break stays with the loop, not the queue.
    fn advance_due(&mut self, now: Nanos, out: &mut Vec<(Nanos, E)>) {
        if self.head.is_some_and(|t| t <= now) {
            let (t, e) = self.pop().expect("head is live");
            out.push((t, e));
        }
    }

    /// Recomputes the cached head after the previous minimum was removed.
    /// Requires `len > 0`.
    fn fix_head(&mut self) {
        self.advance_to_head();
        self.head = self.cur.peek().map(|Reverse(e)| e.time);
        debug_assert!(self.head.is_some(), "len > 0 but no live entry found");
    }

    /// Advances the wheel until the top of `cur` is the live global
    /// minimum. Requires `len > 0` on entry.
    fn advance_to_head(&mut self) {
        loop {
            // Sweep tombstones off the imminent heap's top.
            while let Some(Reverse(e)) = self.cur.peek() {
                if self.slots[e.slot as usize].gen == e.gen {
                    return; // live minimum found
                }
                self.cur.pop();
                self.stored -= 1;
            }
            // `cur` is empty: move the window to the next candidate —
            // the nearest occupied bucket or the overflow top, whichever
            // is earlier.
            while let Some(Reverse(e)) = self.far.peek() {
                if self.slots[e.slot as usize].gen == e.gen {
                    break;
                }
                self.far.pop();
                self.stored -= 1;
            }
            let bucket = (self.near_stored > 0).then(|| self.next_bucket());
            let far_t = self.far.peek().map(|Reverse(e)| e.time.0);
            match (bucket, far_t) {
                (Some((idx, start)), far) => {
                    if far.is_none_or(|f| start <= f) {
                        // Jump the cursor to that bucket and drain it
                        // into `cur`, dropping tombstones on the way.
                        self.wheel_start = start;
                        self.drain_bucket(idx);
                    } else {
                        self.wheel_start =
                            (far.expect("checked") >> WIDTH_SHIFT) << WIDTH_SHIFT;
                    }
                    self.migrate_far();
                }
                (None, Some(f)) => {
                    // Everything pending is past the wheel span: jump the
                    // window to the overflow top and pull due entries in.
                    self.wheel_start = (f >> WIDTH_SHIFT) << WIDTH_SHIFT;
                    self.migrate_far();
                }
                (None, None) => {
                    debug_assert_eq!(self.len, 0, "live entries but empty storage");
                    return;
                }
            }
        }
    }

    /// Finds the nearest occupied bucket at or after the cursor,
    /// returning `(bucket index, window start time)`. Requires
    /// `near_stored > 0`.
    fn next_bucket(&self) -> (usize, u64) {
        let cursor = ((self.wheel_start >> WIDTH_SHIFT) as usize) & (BUCKETS - 1);
        // Scan the circular bitmap starting at the cursor. The cursor's
        // own bucket is always empty (its entries live in `cur`), but a
        // set bit there after wrap-around means a full revolution.
        let mut dist = usize::MAX;
        for w in 0..=WORDS {
            let wi = (cursor / 64 + w) % WORDS;
            let mut word = self.occupied[wi];
            if w == 0 {
                word &= !0u64 << (cursor % 64); // ignore bits before cursor
            }
            if word != 0 {
                let bit = word.trailing_zeros() as usize;
                let idx = wi * 64 + bit;
                // The cursor's own bucket is never occupied, so a set bit
                // always lies strictly ahead (mod BUCKETS).
                dist = (idx + BUCKETS - cursor) % BUCKETS;
                break;
            }
        }
        debug_assert_ne!(dist, usize::MAX, "near_stored > 0 but bitmap empty");
        let start = self.wheel_start + ((dist as u64) << WIDTH_SHIFT);
        (((cursor + dist) % BUCKETS), start)
    }

    /// Moves one bucket's entries into `cur`, dropping tombstones.
    fn drain_bucket(&mut self, idx: usize) {
        let mut bucket = std::mem::take(&mut self.near[idx]);
        self.near_stored -= bucket.len();
        self.occupied[idx / 64] &= !(1 << (idx % 64));
        for e in bucket.drain(..) {
            if self.slots[e.slot as usize].gen == e.gen {
                self.cur.push(Reverse(e));
            } else {
                self.stored -= 1;
            }
        }
        // Hand the (empty, but allocated) Vec back so steady-state bucket
        // traffic reuses its capacity.
        self.near[idx] = bucket;
    }

    /// Pulls overflow entries that now fall inside the wheel span into
    /// the wheel (or `cur`).
    fn migrate_far(&mut self) {
        let end = self.wheel_start.saturating_add(SPAN);
        while let Some(Reverse(e)) = self.far.peek() {
            if e.time.0 >= end {
                break;
            }
            let Reverse(e) = self.far.pop().expect("peeked");
            self.stored -= 1;
            if self.slots[e.slot as usize].gen == e.gen {
                self.insert(e); // re-routes into `cur` or a near bucket
            }
        }
    }

    /// Drops every stored index entry; valid only when `len == 0` (all
    /// remaining entries are tombstones). Keeps bucket capacity.
    fn reset_storage(&mut self) {
        debug_assert_eq!(self.len, 0);
        self.head = None;
        self.cur.clear();
        self.far.clear();
        if self.near_stored > 0 {
            for w in 0..WORDS {
                let mut word = self.occupied[w];
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    self.near[w * 64 + bit].clear();
                }
            }
        }
        self.occupied = [0; WORDS];
        self.near_stored = 0;
        self.stored = 0;
    }

    /// Rebuilds the index without tombstones once they outnumber live
    /// entries. The O(n) rebuild is amortized: it frees at least half the
    /// storage, so each cancelled entry is moved O(1) times on average.
    fn maybe_compact(&mut self) {
        let dead = self.stored - self.len;
        if dead <= self.len || self.stored < 64 {
            return;
        }
        let mut live: Vec<Entry> = Vec::with_capacity(self.len);
        let keep = |slots: &[Slot<E>], e: &Entry| slots[e.slot as usize].gen == e.gen;
        for Reverse(e) in self.cur.drain() {
            if keep(&self.slots, &e) {
                live.push(e);
            }
        }
        for Reverse(e) in self.far.drain() {
            if keep(&self.slots, &e) {
                live.push(e);
            }
        }
        for w in 0..WORDS {
            let mut word = self.occupied[w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let idx = w * 64 + bit;
                for e in std::mem::take(&mut self.near[idx]) {
                    if keep(&self.slots, &e) {
                        live.push(e);
                    }
                }
            }
        }
        self.occupied = [0; WORDS];
        self.near_stored = 0;
        self.stored = 0;
        for e in live {
            self.insert(e);
        }
        debug_assert_eq!(self.stored, self.len);
    }
}

/// The master queue is itself an event source to the registry-driven
/// loop: its horizon is the head's timestamp, and advancing it pops the
/// due head. Events carry their timestamp so handlers scheduled in the
/// past (never produced, but type-honest) remain observable.
impl<E> crate::Component for EventQueue<E> {
    type Event = (Nanos, E);

    fn next_event_time(&self) -> Option<Nanos> {
        self.peek_time()
    }

    fn advance(&mut self, now: Nanos, out: &mut Vec<(Nanos, E)>) {
        self.advance_due(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), 3);
        q.schedule(Nanos(10), 1);
        q.schedule(Nanos(20), 2);
        assert_eq!(q.pop(), Some((Nanos(10), 1)));
        assert_eq!(q.pop(), Some((Nanos(20), 2)));
        assert_eq!(q.pop(), Some((Nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_at_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn cancel_pending() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), 'a');
        let b = q.schedule(Nanos(2), 'b');
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Nanos(2), 'b')));
        assert!(!q.cancel(b), "already popped events cannot be cancelled");
    }

    #[test]
    fn cancel_twice_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), 'a');
        q.schedule(Nanos(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Nanos(2)));
    }

    #[test]
    fn is_empty_accounts_for_cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), ());
        assert!(!q.is_empty());
        q.cancel(a);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn compaction_bounds_tombstone_storage() {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for i in 0..10_000u64 {
            keys.push(q.schedule(Nanos(1 + (i * 7919) % 100_000), i));
        }
        for k in keys.drain(..9_990) {
            assert!(q.cancel(k));
        }
        assert_eq!(q.len(), 10);
        assert!(
            q.storage_len() <= (2 * q.len()).max(64),
            "tombstones compacted: {} stored for {} live",
            q.storage_len(),
            q.len()
        );
        // The survivors still pop in time order.
        let mut last = Nanos::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn peek_is_readonly_and_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), 'a');
        q.schedule(Nanos(2), 'b');
        q.cancel(a);
        // peek_time takes &self: the head cache was fixed eagerly.
        let q_ref = &q;
        assert_eq!(q_ref.peek_time(), Some(Nanos(2)));
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), 1);
        assert_eq!(q.pop(), Some((Nanos(10), 1)));
        q.schedule(Nanos(5), 2);
        q.schedule(Nanos(7), 3);
        assert_eq!(q.pop(), Some((Nanos(5), 2)));
        q.schedule(Nanos(6), 4);
        assert_eq!(q.pop(), Some((Nanos(6), 4)));
        assert_eq!(q.pop(), Some((Nanos(7), 3)));
    }

    #[test]
    fn far_events_migrate_through_the_wheel() {
        // Spread events across the cur window, the near wheel, the
        // overflow heap, and multiple wheel wraps.
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..500)
            .map(|i| (i * 2_654_435_761u64) % 50_000_000) // up to 50 ms
            .collect();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos(t), i);
        }
        let mut sorted: Vec<(u64, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        sorted.sort();
        for (t, i) in sorted {
            assert_eq!(q.pop(), Some((Nanos(t), i)));
        }
        assert_eq!(q.pop(), None);
        assert_eq!(q.storage_len(), 0);
    }

    #[test]
    fn schedule_in_the_past_still_pops_first() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10_000_000), 'f'); // advances the wheel on pop
        q.schedule(Nanos(1), 'p');
        assert_eq!(q.pop(), Some((Nanos(1), 'p')));
        // After the wheel advanced to 10 ms, a past-time schedule still
        // comes out ahead of the far event.
        assert_eq!(q.peek_time(), Some(Nanos(10_000_000)));
        q.schedule(Nanos(5), 'q');
        assert_eq!(q.peek_time(), Some(Nanos(5)));
        assert_eq!(q.pop(), Some((Nanos(5), 'q')));
        assert_eq!(q.pop(), Some((Nanos(10_000_000), 'f')));
    }

    #[test]
    fn keys_from_reused_slots_do_not_alias() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), 'a');
        assert_eq!(q.pop(), Some((Nanos(1), 'a')));
        // 'b' reuses slot 0 with a bumped generation; the stale key for
        // 'a' must not cancel it.
        let b = q.schedule(Nanos(2), 'b');
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert_eq!(q.pop(), None);
    }
}
