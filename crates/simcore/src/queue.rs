//! Time-ordered event queue with FIFO tie-breaking and cancellation.

use crate::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// An opaque handle identifying a scheduled event, usable to cancel it.
///
/// Keys are unique for the lifetime of the queue that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

/// A discrete-event queue ordered by time.
///
/// Two events scheduled for the same instant pop in the order they were
/// scheduled (FIFO), which keeps simulations deterministic. Events can be
/// cancelled by [`EventKey`]; cancelled entries become tombstones that are
/// swept from the top of the heap immediately (so [`peek_time`](Self::peek_time)
/// is a read-only O(1) operation) and compacted wholesale once they
/// outnumber live entries, keeping heavy `cancel()` traffic from degrading
/// `pop`/`peek_time` over long runs.
///
/// # Example
///
/// ```
/// use simcore::{EventQueue, Nanos};
///
/// let mut q = EventQueue::new();
/// let _k1 = q.schedule(Nanos::from_micros(10), 'a');
/// let k2 = q.schedule(Nanos::from_micros(10), 'b');
/// q.cancel(k2);
/// assert_eq!(q.pop(), Some((Nanos::from_micros(10), 'a')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Seqs of entries still in `heap` that have not been cancelled.
    live: HashSet<u64>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`, returning a cancellation
    /// key.
    pub fn schedule(&mut self, time: Nanos, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        self.live.insert(seq);
        EventKey(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (it will never be popped), `false` if it had already
    /// popped or was cancelled before.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if !self.live.remove(&key.0) {
            return false;
        }
        self.drop_cancelled();
        self.maybe_compact();
        true
    }

    /// The time of the earliest pending (non-cancelled) event.
    ///
    /// The heap top is kept live eagerly (on `cancel`/`pop`), so this is a
    /// read-only O(1) peek — it is the cached event horizon the master loop
    /// polls every iteration.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Removes and returns the earliest pending event with its time.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|Reverse(e)| {
            self.live.remove(&e.seq);
            self.drop_cancelled();
            (e.time, e.event)
        })
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` if no pending events remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Entries physically stored, including cancelled tombstones that have
    /// not been compacted yet (diagnostics; tests assert the compaction
    /// bound through this).
    pub fn storage_len(&self) -> usize {
        self.heap.len()
    }

    /// Restores the invariant that the heap top, if any, is live.
    fn drop_cancelled(&mut self) {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.live.contains(&e.seq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Rebuilds the heap without tombstones once they outnumber live
    /// entries. The O(n) rebuild is amortized: it frees at least half the
    /// storage, so each cancelled entry is moved O(1) times on average.
    fn maybe_compact(&mut self) {
        let dead = self.heap.len() - self.live.len();
        if dead <= self.live.len() || self.heap.len() < 64 {
            return;
        }
        let live = &self.live;
        let entries: Vec<Reverse<Entry<E>>> = std::mem::take(&mut self.heap)
            .into_iter()
            .filter(|Reverse(e)| live.contains(&e.seq))
            .collect();
        self.heap = BinaryHeap::from(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), 3);
        q.schedule(Nanos(10), 1);
        q.schedule(Nanos(20), 2);
        assert_eq!(q.pop(), Some((Nanos(10), 1)));
        assert_eq!(q.pop(), Some((Nanos(20), 2)));
        assert_eq!(q.pop(), Some((Nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_at_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn cancel_pending() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), 'a');
        let b = q.schedule(Nanos(2), 'b');
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Nanos(2), 'b')));
        assert!(!q.cancel(b), "already popped events cannot be cancelled");
    }

    #[test]
    fn cancel_twice_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), 'a');
        q.schedule(Nanos(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Nanos(2)));
    }

    #[test]
    fn is_empty_accounts_for_cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), ());
        assert!(!q.is_empty());
        q.cancel(a);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn compaction_bounds_tombstone_storage() {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for i in 0..10_000u64 {
            keys.push(q.schedule(Nanos(1 + (i * 7919) % 100_000), i));
        }
        for k in keys.drain(..9_990) {
            assert!(q.cancel(k));
        }
        assert_eq!(q.len(), 10);
        assert!(
            q.storage_len() <= (2 * q.len()).max(64),
            "tombstones compacted: {} stored for {} live",
            q.storage_len(),
            q.len()
        );
        // The survivors still pop in time order.
        let mut last = Nanos::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn peek_is_readonly_and_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), 'a');
        q.schedule(Nanos(2), 'b');
        q.cancel(a);
        // peek_time takes &self: the cancelled top was swept eagerly.
        let q_ref = &q;
        assert_eq!(q_ref.peek_time(), Some(Nanos(2)));
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), 1);
        assert_eq!(q.pop(), Some((Nanos(10), 1)));
        q.schedule(Nanos(5), 2);
        q.schedule(Nanos(7), 3);
        assert_eq!(q.pop(), Some((Nanos(5), 2)));
        q.schedule(Nanos(6), 4);
        assert_eq!(q.pop(), Some((Nanos(6), 4)));
        assert_eq!(q.pop(), Some((Nanos(7), 3)));
    }
}
