//! Simulated time: [`Nanos`] (absolute or relative nanoseconds) and
//! [`Cycles`] (processor clock domain, used by the IXP model).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A quantity of simulated time in nanoseconds.
///
/// `Nanos` is used both for absolute timestamps (time since simulation
/// start) and durations; the arithmetic is the same and the simulation
/// never runs long enough for `u64` nanoseconds (~584 years) to overflow.
///
/// # Example
///
/// ```
/// use simcore::Nanos;
/// let t = Nanos::from_millis(30) + Nanos::from_micros(500);
/// assert_eq!(t.as_micros(), 30_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero instant / empty duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Nanos((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Subtraction that clamps at zero rather than underflowing.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Addition that clamps at [`Nanos::MAX`].
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// The smaller of two times.
    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }

    /// The larger of two times.
    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }

    /// `true` if this is the zero time.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Mul<f64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: f64) -> Nanos {
        Nanos((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Div<Nanos> for Nanos {
    /// Ratio of two durations.
    type Output = f64;
    fn div(self, rhs: Nanos) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Rem for Nanos {
    type Output = Nanos;
    fn rem(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 % rhs.0)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A quantity of processor clock cycles in some clock domain.
///
/// The IXP2850 microengines run at 1.4 GHz; [`Cycles::to_nanos`] converts a
/// cycle count into simulated time given a clock frequency.
///
/// # Example
///
/// ```
/// use simcore::Cycles;
/// // 1400 cycles at 1.4 GHz is exactly 1 µs.
/// assert_eq!(Cycles(1400).to_nanos(1.4e9).as_nanos(), 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Converts a cycle count at `hz` cycles/second into [`Nanos`],
    /// rounding to the nearest nanosecond.
    pub fn to_nanos(self, hz: f64) -> Nanos {
        Nanos((self.0 as f64 / hz * 1e9).round() as u64)
    }

    /// Raw cycle count.
    pub const fn count(self) -> u64 {
        self.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Nanos::from_millis(3).as_micros(), 3_000);
        assert_eq!(Nanos::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Nanos::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_millis(10);
        let b = Nanos::from_millis(4);
        assert_eq!(a + b, Nanos::from_millis(14));
        assert_eq!(a - b, Nanos::from_millis(6));
        assert_eq!(a * 3, Nanos::from_millis(30));
        assert_eq!(a / 2, Nanos::from_millis(5));
        assert!((a / b - 2.5).abs() < 1e-12);
        assert_eq!(a % b, Nanos::from_millis(2));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Nanos(1).saturating_sub(Nanos(5)), Nanos::ZERO);
        assert_eq!(Nanos::MAX.saturating_add(Nanos(1)), Nanos::MAX);
    }

    #[test]
    fn min_max() {
        assert_eq!(Nanos(3).min(Nanos(5)), Nanos(3));
        assert_eq!(Nanos(3).max(Nanos(5)), Nanos(5));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Nanos(5).to_string(), "5ns");
        assert_eq!(Nanos::from_micros(2).to_string(), "2.000us");
        assert_eq!(Nanos::from_millis(2).to_string(), "2.000ms");
        assert_eq!(Nanos::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn cycles_to_nanos() {
        assert_eq!(Cycles(1400).to_nanos(1.4e9), Nanos(1000));
        assert_eq!(Cycles(0).to_nanos(1.4e9), Nanos::ZERO);
        assert_eq!((Cycles(100) + Cycles(50)).count(), 150);
        assert_eq!((Cycles(10) * 4).count(), 40);
    }

    #[test]
    fn sum_impls() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
        let cy: Cycles = [Cycles(4), Cycles(5)].into_iter().sum();
        assert_eq!(cy, Cycles(9));
    }
}
