//! Online statistics used by every measurement in the reproduction:
//! Welford mean/variance, min/max tracking, logarithmic histograms,
//! time-weighted averages (utilization) and raw time series.

use crate::Nanos;
use std::fmt;

/// Streaming mean / variance / count via Welford's algorithm.
///
/// # Example
///
/// ```
/// use simcore::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] { s.record(x); }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            // Extend in place; replacing `*self` with a clone of `other`
            // would discard this accumulator's storage for no gain.
            self.n = other.n;
            self.mean = other.mean;
            self.m2 = other.m2;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
    }
}

/// Running minimum and maximum.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MinMax {
    min: Option<f64>,
    max: Option<f64>,
}

impl MinMax {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }
}

/// Combined response-time style summary: count, mean, σ, min, max.
///
/// This is the unit of reporting for the paper's Figures 2 & 4 (min–max
/// bars) and Table 1 (averages).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    online: OnlineStats,
    minmax: MinMax,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.online.record(x);
        self.minmax.record(x);
    }

    /// Adds a duration observation in milliseconds.
    pub fn record_nanos(&mut self, d: Nanos) {
        self.record(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.online.count()
    }

    /// Mean of the observations.
    pub fn mean(&self) -> f64 {
        self.online.mean()
    }

    /// Standard deviation of the observations.
    pub fn std_dev(&self) -> f64 {
        self.online.std_dev()
    }

    /// Minimum observation (0 when empty).
    pub fn min(&self) -> f64 {
        self.minmax.min().unwrap_or(0.0)
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        self.minmax.max().unwrap_or(0.0)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.online.merge(&other.online);
        if let Some(m) = other.minmax.min() {
            self.minmax.record(m);
        }
        if let Some(m) = other.minmax.max() {
            self.minmax.record(m);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} max={:.2}",
            self.count(),
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// Histogram with logarithmically spaced buckets (base √2 by default
/// granularity of ~2 buckets per octave is enough for latency shapes).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// bucket i counts values in [scale * r^i, scale * r^(i+1))
    counts: Vec<u64>,
    scale: f64,
    ratio: f64,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given smallest bucket boundary,
    /// bucket growth ratio and bucket count.
    ///
    /// # Panics
    /// Panics if `scale <= 0`, `ratio <= 1`, or `buckets == 0`.
    pub fn new(scale: f64, ratio: f64, buckets: usize) -> Self {
        assert!(scale > 0.0 && ratio > 1.0 && buckets > 0);
        Histogram {
            counts: vec![0; buckets],
            scale,
            ratio,
            underflow: 0,
            total: 0,
        }
    }

    /// A latency-oriented default: 1 µs .. ~100 s in ms units.
    pub fn latency_millis() -> Self {
        Histogram::new(1e-3, std::f64::consts::SQRT_2, 56)
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.scale {
            self.underflow += 1;
            return;
        }
        let idx = ((x / self.scale).ln() / self.ratio.ln()) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile (`q` in `[0,1]`) using bucket upper bounds.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.scale;
        }
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.scale * self.ratio.powi(i as i32 + 1);
            }
        }
        self.scale * self.ratio.powi(self.counts.len() as i32)
    }
}

/// Time-weighted average of a piecewise-constant signal — the tool for CPU
/// utilization accounting.
///
/// # Example
///
/// ```
/// use simcore::{Nanos, stats::TimeWeighted};
/// let mut u = TimeWeighted::new(Nanos::ZERO, 0.0);
/// u.set(Nanos::from_millis(10), 1.0);   // busy from 10ms
/// u.set(Nanos::from_millis(30), 0.0);   // idle from 30ms
/// assert!((u.average(Nanos::from_millis(40)) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: Nanos,
    value: f64,
    weighted_sum: f64,
    start: Nanos,
}

impl TimeWeighted {
    /// Creates a signal with an initial value at `start`.
    pub fn new(start: Nanos, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            value: initial,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Updates the signal value at time `now` (must not precede the last
    /// update; equal times are fine).
    pub fn set(&mut self, now: Nanos, value: f64) {
        debug_assert!(now >= self.last_time, "time went backwards");
        self.weighted_sum += self.value * (now.saturating_sub(self.last_time)).as_secs_f64();
        self.last_time = now;
        self.value = value;
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Average over `[start, now]`.
    pub fn average(&self, now: Nanos) -> f64 {
        let span = now.saturating_sub(self.start).as_secs_f64();
        if span <= 0.0 {
            return self.value;
        }
        let tail = self.value * now.saturating_sub(self.last_time).as_secs_f64();
        (self.weighted_sum + tail) / span
    }

    /// Resets the accounting window to begin at `now` with the current value.
    pub fn reset(&mut self, now: Nanos) {
        self.weighted_sum = 0.0;
        self.last_time = now;
        self.start = now;
    }
}

/// A captured `(time, value)` series, e.g. for Figure 7's CPU/buffer traces.
#[derive(Debug, Clone, Default)]
pub struct Series {
    points: Vec<(Nanos, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, t: Nanos, v: f64) {
        self.points.push((t, v));
    }

    /// The captured samples in insertion order.
    pub fn points(&self) -> &[(Nanos, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no samples have been captured.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest value in the series, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Mean of the sampled values (unweighted).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_basics() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        s.record(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn minmax_tracks() {
        let mut m = MinMax::new();
        assert_eq!(m.min(), None);
        m.record(3.0);
        m.record(-1.0);
        m.record(2.0);
        assert_eq!(m.min(), Some(-1.0));
        assert_eq!(m.max(), Some(3.0));
    }

    #[test]
    fn summary_combines() {
        let mut s = Summary::new();
        s.record_nanos(Nanos::from_millis(10));
        s.record_nanos(Nanos::from_millis(30));
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 20.0).abs() < 1e-9);
        assert_eq!(s.min(), 10.0);
        assert_eq!(s.max(), 30.0);
        let shown = s.to_string();
        assert!(shown.contains("n=2"), "{shown}");
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        a.record(1.0);
        let mut b = Summary::new();
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 9.0);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::latency_millis();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p50 > 300.0 && p50 < 800.0, "p50 {p50}");
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_underflow_and_empty() {
        let mut h = Histogram::new(1.0, 2.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
        h.record(0.01);
        assert_eq!(h.quantile(1.0), 1.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut u = TimeWeighted::new(Nanos::ZERO, 0.0);
        u.set(Nanos::from_millis(10), 1.0);
        u.set(Nanos::from_millis(30), 0.0);
        let avg = u.average(Nanos::from_millis(40));
        assert!((avg - 0.5).abs() < 1e-12, "avg {avg}");
        assert_eq!(u.current(), 0.0);
    }

    #[test]
    fn time_weighted_reset() {
        let mut u = TimeWeighted::new(Nanos::ZERO, 1.0);
        u.set(Nanos::from_millis(10), 1.0);
        u.reset(Nanos::from_millis(10));
        u.set(Nanos::from_millis(20), 0.0);
        let avg = u.average(Nanos::from_millis(20));
        assert!((avg - 1.0).abs() < 1e-12, "avg {avg}");
    }

    #[test]
    fn series_capture() {
        let mut s = Series::new();
        assert!(s.is_empty());
        s.push(Nanos(1), 2.0);
        s.push(Nanos(2), 8.0);
        s.push(Nanos(3), 5.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_value(), Some(8.0));
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.points()[1], (Nanos(2), 8.0));
    }

    #[test]
    #[should_panic(expected = "scale > 0.0")]
    fn histogram_rejects_bad_scale() {
        let _ = Histogram::new(0.0, 2.0, 4);
    }

    #[test]
    fn histogram_overflow_lands_in_last_bucket() {
        let mut h = Histogram::new(1.0, 2.0, 3); // buckets up to 8
        h.record(1e12);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) >= 8.0);
    }

    #[test]
    fn summary_display_handles_empty() {
        let s = Summary::new();
        let text = s.to_string();
        assert!(text.contains("n=0"), "{text}");
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn time_weighted_same_instant_updates() {
        let mut u = TimeWeighted::new(Nanos::ZERO, 0.0);
        u.set(Nanos::from_millis(5), 1.0);
        u.set(Nanos::from_millis(5), 3.0); // same instant: last wins
        assert_eq!(u.current(), 3.0);
        let avg = u.average(Nanos::from_millis(10));
        assert!((avg - 1.5).abs() < 1e-12, "avg {avg}");
    }
}
