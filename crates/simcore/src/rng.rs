//! Deterministic pseudo-random numbers and distribution samplers.
//!
//! Implemented in-crate (xoshiro256++ seeded via SplitMix64) so the kernel
//! has zero dependencies and simulations replay bit-identically across
//! toolchain and dependency upgrades.

use crate::Nanos;

/// A deterministic pseudo-random number generator (xoshiro256++).
///
/// # Example
///
/// ```
/// use simcore::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid;
    /// the internal state is expanded with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Useful to give each simulation component its own stream so adding a
    /// component does not perturb the draws of the others.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Normally distributed value (Box–Muller).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Pareto-distributed value with scale `xm` and shape `alpha`.
    ///
    /// Used for heavy-tailed service-demand perturbation.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        xm / u.powf(1.0 / alpha)
    }

    /// Samples an index according to `weights` (need not be normalised).
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty with positive sum"
        );
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exp_nanos(&mut self, mean: Nanos) -> Nanos {
        Nanos::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// Normally distributed duration, truncated at zero.
    pub fn normal_nanos(&mut self, mean: Nanos, std_dev: Nanos) -> Nanos {
        Nanos::from_secs_f64(self.normal(mean.as_secs_f64(), std_dev.as_secs_f64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(9);
        let mut s1 = root.fork(1);
        let mut s2 = root.fork(2);
        let same = (0..64).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut r = SimRng::new(4);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[r.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
        }
        assert_eq!(r.range(9, 9), 9);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::new(8);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn pareto_is_at_least_scale() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::new(12);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn duration_helpers() {
        let mut r = SimRng::new(14);
        let d = r.exp_nanos(Nanos::from_millis(5));
        assert!(d.as_nanos() > 0);
        let n = r.normal_nanos(Nanos::from_millis(5), Nanos::ZERO);
        assert_eq!(n, Nanos::from_millis(5));
    }
}
