//! # simcore — deterministic discrete-event simulation kernel
//!
//! The foundation every other `archipelago` crate builds on. It provides:
//!
//! * [`Nanos`] / [`Cycles`] — simulated-time and clock-domain arithmetic.
//! * [`EventQueue`] — a time-ordered, FIFO-stable, cancellable event heap.
//! * [`SimRng`] — a small, fully deterministic PRNG with the distribution
//!   samplers the workload models need (no external dependency).
//! * [`stats`] — online statistics: Welford mean/variance, min/max,
//!   logarithmic histograms, time-weighted averages and time series.
//! * [`trace`] — bounded ring-buffer tracing for debugging simulations.
//!
//! Everything here is purely computational: no wall-clock, no I/O, no
//! threads. A simulation driven exclusively through this kernel with a fixed
//! seed replays bit-identically.
//!
//! ## Example
//!
//! ```
//! use simcore::{EventQueue, Nanos};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(Nanos::from_millis(5), "later");
//! q.schedule(Nanos::from_millis(1), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (Nanos::from_millis(1), "sooner"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod component;
mod queue;
mod rng;
pub mod stats;
mod time;
pub mod trace;

pub use component::{Component, HorizonCache};
pub use queue::{EventKey, EventQueue};
pub use rng::SimRng;
pub use time::{Cycles, Nanos};
