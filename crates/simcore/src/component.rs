//! The [`Component`] contract every event source implements, and the
//! [`HorizonCache`] the master loop uses to pick the next source.
//!
//! Before this module, the platform's run loop hand-threaded nine event
//! sources through a `match`: each source had its own peek call, its own
//! scratch buffer, and its own arm. [`Component`] names the two
//! operations that loop actually needs —
//!
//! * [`next_event_time`](Component::next_event_time): the earliest
//!   simulated instant at which the component would change state on its
//!   own (its *horizon*; `None` when idle), and
//! * [`advance`](Component::advance): consume everything due at `now`,
//!   appending the externally visible results to `out`,
//!
//! — so schedulers, network islands, DMA links, mailbox lanes,
//! retransmission timers and accelerators all present one shape to the
//! loop, and a registry can iterate them instead of a hand-written match.
//!
//! [`HorizonCache`] is the per-component state the PR-5 dirty bitmask
//! grew into: one cached horizon slot per component plus a dirty mask,
//! with the argmin rule (earliest time, lowest index breaks ties) that
//! fixes the deterministic dispatch order.

use crate::Nanos;

/// An event source the master loop can schedule: anything with a
/// well-defined next event time that can be advanced to a timestamp.
///
/// # Contract
///
/// * **Horizon validity** — after `advance(now, …)` returns, the new
///   [`next_event_time`](Self::next_event_time) must be `>= now`: a
///   component never retroactively discovers work in the past. The
///   conformance property in `crates/bench/tests/determinism.rs` checks
///   this for every island device.
/// * **Purity of the peek** — `next_event_time` takes `&self` and must
///   not mutate observable state; the loop may call it any number of
///   times between advances (the horizon cache calls it only when the
///   component is marked dirty).
/// * **Determinism** — identical call sequences produce identical events
///   in identical order; any randomness comes from seeded state inside
///   the component.
pub trait Component {
    /// What the component emits when advanced (scheduler completions,
    /// classified packets, delivered frames, …).
    type Event;

    /// Earliest simulated time at which this component has work, or
    /// `None` when idle. The master loop never advances a component past
    /// another component's horizon.
    fn next_event_time(&self) -> Option<Nanos>;

    /// Advances internal state to `now`, appending externally visible
    /// events to `out`. Called only with `now` equal to the component's
    /// own horizon (the loop dispatches exactly at event times).
    fn advance(&mut self, now: Nanos, out: &mut Vec<Self::Event>);
}

/// Cached horizons for `N` components plus a dirty mask: the master
/// loop's working memory.
///
/// Each slot holds the component's last computed horizon
/// ([`Nanos::MAX`] = idle). Code that mutates a component's timing state
/// marks its bit with [`mark`](Self::mark); the loop drains the mask
/// with [`take_dirty`](Self::take_dirty), recomputes only marked slots
/// via [`set`](Self::set), and picks the next dispatch with
/// [`earliest`](Self::earliest). The steady-state cost is a min over
/// `N` array slots rather than `N` virtual calls.
#[derive(Debug, Clone)]
pub struct HorizonCache<const N: usize> {
    slots: [Nanos; N],
    dirty: u32,
}

impl<const N: usize> HorizonCache<N> {
    /// Mask with every component bit set.
    pub const ALL: u32 = if N >= 32 { u32::MAX } else { (1u32 << N) - 1 };

    /// A cache with every slot idle and every bit dirty (the first
    /// refresh computes all horizons from scratch).
    pub fn new() -> Self {
        HorizonCache { slots: [Nanos::MAX; N], dirty: Self::ALL }
    }

    /// Marks the components in `bits` as needing a horizon recompute.
    #[inline]
    pub fn mark(&mut self, bits: u32) {
        self.dirty |= bits;
    }

    /// Marks every component dirty (used after bulk reconfiguration).
    #[inline]
    pub fn mark_all(&mut self) {
        self.dirty = Self::ALL;
    }

    /// Returns and clears the dirty mask; the caller refreshes exactly
    /// the returned bits.
    #[inline]
    pub fn take_dirty(&mut self) -> u32 {
        std::mem::take(&mut self.dirty)
    }

    /// The dirty mask without clearing it.
    #[inline]
    pub fn dirty(&self) -> u32 {
        self.dirty
    }

    /// The cached horizon of component `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Nanos {
        self.slots[i]
    }

    /// Stores a freshly computed horizon for component `i`.
    #[inline]
    pub fn set(&mut self, i: usize, t: Nanos) {
        self.slots[i] = t;
    }

    /// The earliest cached horizon and its component index, with the
    /// deterministic tie-break: at equal times the lowest index wins
    /// (strict `<` during the scan). Returns `(Nanos::MAX, N)` when
    /// every component is idle.
    #[inline]
    pub fn earliest(&self) -> (Nanos, usize) {
        let mut t = Nanos::MAX;
        let mut idx = N;
        for (i, &h) in self.slots.iter().enumerate() {
            if h < t {
                t = h;
                idx = i;
            }
        }
        (t, idx)
    }
}

impl<const N: usize> Default for HorizonCache<N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    #[test]
    fn new_cache_is_fully_dirty_and_idle() {
        let mut c: HorizonCache<9> = HorizonCache::new();
        assert_eq!(c.take_dirty(), (1 << 9) - 1);
        assert_eq!(c.take_dirty(), 0);
        assert_eq!(c.earliest(), (Nanos::MAX, 9));
    }

    #[test]
    fn earliest_breaks_ties_toward_the_lowest_index() {
        let mut c: HorizonCache<4> = HorizonCache::new();
        c.set(1, Nanos::from_micros(5));
        c.set(3, Nanos::from_micros(5));
        assert_eq!(c.earliest(), (Nanos::from_micros(5), 1));
        c.set(0, Nanos::from_micros(5));
        assert_eq!(c.earliest(), (Nanos::from_micros(5), 0));
        c.set(2, Nanos::from_micros(4));
        assert_eq!(c.earliest(), (Nanos::from_micros(4), 2));
    }

    #[test]
    fn mark_accumulates_until_taken() {
        let mut c: HorizonCache<3> = HorizonCache::new();
        c.take_dirty();
        c.mark(0b001);
        c.mark(0b100);
        assert_eq!(c.dirty(), 0b101);
        assert_eq!(c.take_dirty(), 0b101);
        assert_eq!(c.dirty(), 0);
    }

    #[test]
    fn event_queue_is_a_component() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert_eq!(Component::next_event_time(&q), None);
        q.schedule(Nanos::from_micros(3), 7);
        q.schedule(Nanos::from_micros(1), 9);
        let t = Component::next_event_time(&q).unwrap();
        assert_eq!(t, Nanos::from_micros(1));
        let mut out = Vec::new();
        q.advance(t, &mut out);
        assert_eq!(out, vec![(Nanos::from_micros(1), 9)]);
        // One event per advance: the head at 3 µs is still queued.
        assert_eq!(Component::next_event_time(&q), Some(Nanos::from_micros(3)));
    }
}
