//! Lightweight bounded event tracing for debugging simulations.
//!
//! A [`TraceBuffer`] is a fixed-capacity ring of timestamped records.
//! The record type is generic: components on a hot path record compact
//! event values (the platform uses a plain enum) and rendering to text
//! happens lazily, only when something actually reads the history — so
//! steady-state tracing costs a ring-slot write and no allocation. The
//! default record type is `String` for ad-hoc debugging.

use crate::Nanos;
use std::collections::VecDeque;
use std::fmt::Display;

/// A bounded ring of `(time, record)` trace entries.
///
/// # Example
///
/// ```
/// use simcore::{trace::TraceBuffer, Nanos};
///
/// let mut t: TraceBuffer = TraceBuffer::new(2);
/// t.record(Nanos::from_millis(1), "first");
/// t.record(Nanos::from_millis(2), "second");
/// t.record(Nanos::from_millis(3), "third"); // evicts "first"
/// let msgs: Vec<_> = t.iter().map(|(_, m)| m.as_str()).collect();
/// assert_eq!(msgs, vec!["second", "third"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer<T = String> {
    records: VecDeque<(Nanos, T)>,
    capacity: usize,
    recorded: u64,
}

/// Upper bound on *up-front* allocation in [`TraceBuffer::new`]. The
/// eviction bound is always the full `capacity`; buffers larger than this
/// start small and grow on demand, so a huge capacity costs nothing until
/// it is actually used.
const PREALLOC_LIMIT: usize = 4096;

impl<T> TraceBuffer<T> {
    /// Creates a buffer holding at most `capacity` records (0 disables
    /// recording entirely). Pre-allocation is capped at
    /// [`PREALLOC_LIMIT`](self) records; capacities beyond that grow
    /// lazily but still retain up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            records: VecDeque::with_capacity(capacity.min(PREALLOC_LIMIT)),
            capacity,
            recorded: 0,
        }
    }

    /// Appends a record, evicting the oldest when full. Once the ring has
    /// either filled its pre-allocated capacity or wrapped, this performs
    /// no heap allocation for record types that own no heap data.
    pub fn record(&mut self, now: Nanos, event: impl Into<T>) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back((now, event.into()));
        self.recorded += 1;
    }

    /// The retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(Nanos, T)> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever written (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Clears retained records (the total count is preserved).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl<T: Display> TraceBuffer<T> {
    /// Renders the retained records, one per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (t, m) in &self.records {
            out.push_str(&format!("[{t}] {m}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut t: TraceBuffer = TraceBuffer::new(3);
        for i in 0..5u64 {
            t.record(Nanos(i), format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 5);
        let first = t.iter().next().unwrap();
        assert_eq!(first.1, "e2");
    }

    #[test]
    fn zero_capacity_disables() {
        let mut t: TraceBuffer = TraceBuffer::new(0);
        t.record(Nanos(1), "x");
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn dump_is_line_per_record() {
        let mut t: TraceBuffer = TraceBuffer::new(8);
        t.record(Nanos::from_millis(1), "alpha");
        t.record(Nanos::from_millis(2), "beta");
        let dump = t.dump();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("alpha"));
        assert!(dump.contains("1.000ms"));
    }

    #[test]
    fn capacity_beyond_prealloc_limit_still_retains_everything() {
        let cap = PREALLOC_LIMIT + 100;
        let mut t: TraceBuffer = TraceBuffer::new(cap);
        for i in 0..(cap as u64 + 50) {
            t.record(Nanos(i), "e");
        }
        // The true retention bound is `capacity`, not the pre-allocation
        // limit: the buffer grew past PREALLOC_LIMIT and evicted only the
        // overflow beyond `cap`.
        assert_eq!(t.len(), cap);
        assert_eq!(t.iter().next().unwrap().0, Nanos(50));
    }

    #[test]
    fn clear_keeps_total() {
        let mut t: TraceBuffer = TraceBuffer::new(2);
        t.record(Nanos(1), "a");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 1);
    }

    #[test]
    fn value_records_round_trip() {
        // Non-string record types work end to end; rendering happens
        // only in `dump`.
        #[derive(Debug, Clone, Copy, PartialEq)]
        struct Ev(u32);
        impl std::fmt::Display for Ev {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "ev#{}", self.0)
            }
        }
        let mut t: TraceBuffer<Ev> = TraceBuffer::new(2);
        t.record(Nanos(1), Ev(7));
        t.record(Nanos(2), Ev(8));
        t.record(Nanos(3), Ev(9));
        assert_eq!(t.iter().map(|&(_, e)| e).collect::<Vec<_>>(), [Ev(8), Ev(9)]);
        assert!(t.dump().contains("ev#9"));
    }
}
