//! Lightweight bounded event tracing for debugging simulations.
//!
//! A [`TraceBuffer`] is a fixed-capacity ring of timestamped records.
//! Components record human-readable events cheaply; when something goes
//! wrong, the most recent history is available without having logged the
//! entire run. The platform uses one to expose its coordination-decision
//! history.

use crate::Nanos;
use std::collections::VecDeque;

/// A bounded ring of `(time, message)` trace records.
///
/// # Example
///
/// ```
/// use simcore::{trace::TraceBuffer, Nanos};
///
/// let mut t = TraceBuffer::new(2);
/// t.record(Nanos::from_millis(1), "first");
/// t.record(Nanos::from_millis(2), "second");
/// t.record(Nanos::from_millis(3), "third"); // evicts "first"
/// let msgs: Vec<_> = t.iter().map(|(_, m)| m.as_str()).collect();
/// assert_eq!(msgs, vec!["second", "third"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    records: VecDeque<(Nanos, String)>,
    capacity: usize,
    recorded: u64,
}

/// Upper bound on *up-front* allocation in [`TraceBuffer::new`]. The
/// eviction bound is always the full `capacity`; buffers larger than this
/// start small and grow on demand, so a huge capacity costs nothing until
/// it is actually used.
const PREALLOC_LIMIT: usize = 4096;

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` records (0 disables
    /// recording entirely). Pre-allocation is capped at
    /// [`PREALLOC_LIMIT`](self) records; capacities beyond that grow
    /// lazily but still retain up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            records: VecDeque::with_capacity(capacity.min(PREALLOC_LIMIT)),
            capacity,
            recorded: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn record(&mut self, now: Nanos, message: impl Into<String>) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back((now, message.into()));
        self.recorded += 1;
    }

    /// The retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(Nanos, String)> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever written (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Renders the retained records, one per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (t, m) in &self.records {
            out.push_str(&format!("[{t}] {m}\n"));
        }
        out
    }

    /// Clears retained records (the total count is preserved).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5u64 {
            t.record(Nanos(i), format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 5);
        let first = t.iter().next().unwrap();
        assert_eq!(first.1, "e2");
    }

    #[test]
    fn zero_capacity_disables() {
        let mut t = TraceBuffer::new(0);
        t.record(Nanos(1), "x");
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn dump_is_line_per_record() {
        let mut t = TraceBuffer::new(8);
        t.record(Nanos::from_millis(1), "alpha");
        t.record(Nanos::from_millis(2), "beta");
        let dump = t.dump();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("alpha"));
        assert!(dump.contains("1.000ms"));
    }

    #[test]
    fn capacity_beyond_prealloc_limit_still_retains_everything() {
        let cap = PREALLOC_LIMIT + 100;
        let mut t = TraceBuffer::new(cap);
        for i in 0..(cap as u64 + 50) {
            t.record(Nanos(i), "e");
        }
        // The true retention bound is `capacity`, not the pre-allocation
        // limit: the buffer grew past PREALLOC_LIMIT and evicted only the
        // overflow beyond `cap`.
        assert_eq!(t.len(), cap);
        assert_eq!(t.iter().next().unwrap().0, Nanos(50));
    }

    #[test]
    fn clear_keeps_total() {
        let mut t = TraceBuffer::new(2);
        t.record(Nanos(1), "a");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 1);
    }
}
