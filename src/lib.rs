//! # archipelago
//!
//! A full-system, deterministic reproduction of *"A Case for Coordinated
//! Resource Management in Heterogeneous Multicore Platforms"* (Tembey,
//! Gavrilovska, Schwan — WIOSCA/ISCA 2010) as a Rust simulation library.
//!
//! The paper's prototype couples an Intel IXP2850 network processor with an
//! x86 host virtualized by Xen, and shows that *coordinating* the two
//! islands' independent resource managers (via **Tune** and **Trigger**
//! messages) improves end-to-end application performance. This crate is the
//! facade over the workspace:
//!
//! * [`simcore`] — discrete-event kernel (time, events, RNG, statistics)
//! * [`xsched`] — the x86 island: a faithful Xen credit-scheduler model
//! * [`ixp`] — the IXP2850 island: microengines, memory hierarchy, pipelines
//! * [`accel`] — the third island: a batching inference accelerator with
//!   per-tenant weighted queues and device-memory occupancy
//! * [`pcie`] — the interconnect: DMA, message rings, coordination mailbox
//! * [`coord`] — the paper's contribution: islands, entities, Tune/Trigger,
//!   the global controller and coordination policies
//! * [`workloads`] — RUBiS (3-tier auction site), MPlayer (streaming) and
//!   multi-tenant inference serving
//! * [`platform`] — the wired-up two- or three-island platform simulation
//! * [`fleet`] — N platform shards joined by a Lamport-ordered
//!   cross-node coordination bus and a node → rack → fleet tree
//! * [`metrics`] — reporting: response times, throughput, utilization,
//!   platform efficiency
//!
//! ## Quickstart
//!
//! ```
//! use archipelago::platform::{PlatformBuilder, RubisScenario};
//! use archipelago::coord::PolicyKind;
//! use archipelago::simcore::Nanos;
//!
//! // Run 20 simulated seconds of RUBiS with coordination enabled.
//! let mut sim = PlatformBuilder::new()
//!     .seed(42)
//!     .policy(PolicyKind::RequestType)
//!     .build_rubis(RubisScenario::read_write_mix(8));
//! let report = sim.run(Nanos::from_secs(20));
//! assert!(report.rubis.completed > 0);
//! ```

pub use accel;
pub use coord;
pub use fleet;
pub use ixp;
pub use metrics;
pub use pcie;
pub use platform;
pub use simcore;
pub use workloads;
pub use xsched;
