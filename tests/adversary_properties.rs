//! Property tests for the adversary-defense layer: the per-entity
//! Tune/Trigger policer in `coord::limits`, the oscillation detector's
//! decay-window boundary, and full-platform determinism under strategic
//! tenants plus chaos injection.
//!
//! The `chaos_forced_failure` fixture at the bottom is the CI replay
//! check: ci.sh runs it with `SIMTEST_CHAOS_FORCE_FAIL=1`, captures the
//! `SIMTEST_SEED` and shrunk counterexample from the panic, re-runs with
//! that seed, and asserts the identical shrunk report.

use archipelago::coord::{EntityId, EntityPolicer, OscillationDetector, PolicerConfig};
use archipelago::platform::{
    AdversarySpec, ChaosPlan, PlatformBuilder, PolicyKind, RubisScenario,
};
use archipelago::simcore::{Nanos, SimRng};
use simtest::chaos::chaos_check_with;
use simtest::gen::{vec_of, zip2, Gen};
use simtest::runner::Config;
use simtest::{check, st_assert, st_assert_eq};

/// A random tune workload: (inter-arrival ns, raw delta) pairs where the
/// signed delta is `raw - 512`, spanning honest oscillation and monotone
/// inflation alike.
fn tune_sequence() -> Gen<Vec<(u64, u64)>> {
    let step = zip2(Gen::u64_in(0, 100_000_000), Gen::u64_in(0, 1024));
    vec_of(step, 0, 64)
}

#[test]
fn policer_conserves_requests_and_caps_net_displacement() {
    check("policer_conservation", &tune_sequence(), |steps| {
        let cfg = PolicerConfig::default();
        let mut p = EntityPolicer::new(cfg);
        let e = EntityId(7);
        let mut now = Nanos::ZERO;
        let mut attempts = 0u64;
        for &(dt, raw) in steps {
            now += Nanos::from_nanos(dt);
            let delta = raw as i32 - 512;
            attempts += 1;
            // An admitted delta never exceeds the request's magnitude
            // and never flips its sign.
            if let Some(applied) = p.police_tune(now, e, delta) {
                st_assert!(
                    applied.unsigned_abs() <= delta.unsigned_abs()
                        && (applied == 0 || applied.signum() == delta.signum()),
                    "admitted {applied} for requested {delta}"
                );
            }
            let s = p.stats_for(e);
            st_assert!(
                s.net_applied.unsigned_abs() <= cfg.displacement_cap as u64,
                "net displacement {} escaped cap {}",
                s.net_applied,
                cfg.displacement_cap
            );
        }
        let s = p.stats_for(e);
        st_assert_eq!(s.admitted + s.throttled, attempts);
        st_assert!(s.discounted <= s.admitted, "discounted > admitted");
        Ok(())
    });
}

#[test]
fn honest_tenants_are_never_starved_by_a_spammer() {
    // Buckets are per entity: a flat-out tune spammer exhausting its own
    // budget must not cost a slow honest sender a single admission.
    let periods = zip2(
        Gen::u64_in(100_000, 5_000_000),      // spammer: every 0.1–5 ms
        Gen::u64_in(40_000_000, 500_000_000), // honest: every 40–500 ms
    );
    check("no_starvation", &periods, |&(spam_ns, honest_ns)| {
        let mut p = EntityPolicer::new(PolicerConfig::default());
        let (spammer, honest) = (EntityId(1), EntityId(2));
        let end = Nanos::from_secs(10);
        let mut t = Nanos::ZERO;
        while t <= end {
            let _ = p.police_tune(t, spammer, 512);
            t += Nanos::from_nanos(spam_ns);
        }
        let mut t = Nanos::ZERO;
        let mut sign = 1i32;
        while t <= end {
            let _ = p.police_tune(t, honest, sign * 64);
            sign = -sign;
            t += Nanos::from_nanos(honest_ns);
        }
        let hs = p.stats_for(honest);
        st_assert_eq!(hs.throttled, 0);
        st_assert!(
            p.stats_for(spammer).throttled > 0,
            "spammer at {spam_ns} ns period was never throttled"
        );
        Ok(())
    });
}

#[test]
fn same_seed_policer_replay_is_identical() {
    // Drive the policer from a SimRng-derived request stream; the same
    // seed must reproduce the exact same counters and net displacement.
    let run = |seed: u64| {
        let mut rng = SimRng::new(seed);
        let mut p = EntityPolicer::new(PolicerConfig::default());
        let mut now = Nanos::ZERO;
        for _ in 0..2_000 {
            now += Nanos::from_nanos(rng.range(0, 20_000_000));
            let e = EntityId(rng.range(0, 4) as u32);
            if rng.range(0, 4) == 0 {
                let _ = p.police_trigger(now, e);
            } else {
                let _ = p.police_tune(now, e, rng.range(0, 1025) as i32 - 512);
            }
        }
        (0..4).map(|i| p.stats_for(EntityId(i))).collect::<Vec<_>>()
    };
    check("policer_replay", &Gen::u64_in(0, u64::MAX - 1), |&seed| {
        st_assert_eq!(run(seed), run(seed));
        Ok(())
    });
}

#[test]
fn oscillation_detector_decay_window_boundary_is_exact() {
    // Regression guard for the PR-3 latching fix: a flip recorded at T
    // counts through *exactly* T + window (inclusive), and `observe` at
    // exactly front + window must not evict the front flip.
    let w = Nanos::from_secs(1);
    let mut d = OscillationDetector::new(w, 4);
    d.observe(Nanos::ZERO, false);
    let flip_at = Nanos::from_millis(1);
    d.observe(flip_at, true);
    assert_eq!(d.flips_in_window(flip_at + w), 1, "flip lost at T + window");
    assert_eq!(
        d.flips_in_window(flip_at + w + Nanos::from_nanos(1)),
        0,
        "flip outlived T + window"
    );

    // Observe exactly at front + window: eviction is strictly `<`, so the
    // old flip survives alongside the fresh one.
    assert_eq!(d.observe(flip_at + w, false), 2);
    // One nanosecond later the original flip is physically evicted.
    assert_eq!(d.observe(flip_at + w + Nanos::from_nanos(1), true), 2);

    // Trigger-spam at the decay boundary: a burst of 6 flips trips the
    // detector, and the verdict decays exactly one nanosecond after the
    // last flip ages out — not before, and without latching.
    let mut d = OscillationDetector::new(w, 4);
    for i in 0..7u64 {
        d.observe(Nanos::from_millis(10 * i), i % 2 == 0);
    }
    let last_flip = Nanos::from_millis(60);
    assert!(d.is_oscillating(last_flip));
    assert!(
        d.is_oscillating(Nanos::from_millis(10) + w),
        "verdict decayed while 5 flips were still inside the window"
    );
    assert!(
        !d.is_oscillating(Nanos::from_millis(20) + w + Nanos::from_nanos(1)),
        "verdict latched past the decay boundary"
    );
    assert!(!d.is_oscillating(last_flip + w + Nanos::from_nanos(1)));
}

#[test]
fn adversarial_chaotic_platform_runs_are_deterministic() {
    // The full stack under stress: strategic tenants, enabled defenses
    // and an active chaos schedule must still replay bit-identically.
    let run = || {
        let mut sim = PlatformBuilder::new()
            .seed(42)
            .policy(PolicyKind::RequestType)
            .adversaries(vec![
                AdversarySpec::inflate(),
                AdversarySpec::spam(),
                AdversarySpec::free_ride(),
            ])
            .coord_defenses(PolicerConfig::default())
            .chaos(ChaosPlan::seeded(0xC4A0_5EED, 12))
            .build_rubis(RubisScenario::read_write_mix(8));
        let r = sim.run(Nanos::from_secs(5));
        (
            r.rubis.completed,
            r.rubis.throughput.to_bits(),
            r.coord.messages_sent,
            r.coord.tunes_applied,
            r.coord.triggers_applied,
            r.coord.throttled,
            r.coord.discounted,
            r.net.delivered,
            sim.chaos_injected(),
        )
    };
    let first = run();
    assert_eq!(first, run());
    assert!(first.8 > 0, "seeded chaos plan injected nothing in 5 s");
    assert!(
        first.5 + first.6 > 0,
        "defenses neither throttled nor discounted a spamming adversary"
    );
}

/// CI replay fixture — inert unless `SIMTEST_CHAOS_FORCE_FAIL=1`.
///
/// The property fails for any case ≥ 20 paired with a non-empty chaos
/// schedule, so the runner must shrink to the boundary case 20 plus a
/// single minimal perturbation and print a `SIMTEST_SEED=…` replay line.
/// ci.sh re-runs under that seed and asserts the identical shrunk report.
#[test]
fn chaos_forced_failure() {
    if std::env::var("SIMTEST_CHAOS_FORCE_FAIL").as_deref() != Ok("1") {
        return;
    }
    chaos_check_with(
        &Config::with_cases(64),
        "chaos_forced_failure",
        &Gen::u64_in(0, 1000),
        6,
        |v, plan| {
            st_assert!(
                *v < 20 || plan.is_none(),
                "case {v} under chaos ({} perturbations)",
                plan.schedule().len()
            );
            Ok(())
        },
    );
}
