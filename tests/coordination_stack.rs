//! Integration of the coordination stack without the full platform:
//! policy → wire codec → mailbox → controller → island managers
//! (XenCtl over the credit scheduler, thread knobs on the IXP island).

use archipelago::coord::{
    wire, Action, Controller, CoordMsg, CoordinationPolicy, EntityId, IslandId, IslandKind,
    Observation, RequestTypePolicy, StreamQosPolicy,
};
use archipelago::ixp::{IxpConfig, IxpIsland};
use archipelago::pcie::Mailbox;
use archipelago::simcore::Nanos;
use archipelago::xsched::{Burst, CreditScheduler, SchedConfig, WakeMode, XenCtl};

const X86: IslandId = IslandId(0);
const IXP: IslandId = IslandId(1);

fn registered_controller(web_dom: u32, flow: u32) -> Controller {
    let mut c = Controller::new();
    c.handle(
        Nanos::ZERO,
        CoordMsg::RegisterIsland { island: X86, kind: IslandKind::GeneralPurpose },
    );
    c.handle(
        Nanos::ZERO,
        CoordMsg::RegisterIsland { island: IXP, kind: IslandKind::NetworkProcessor },
    );
    c.handle(
        Nanos::ZERO,
        CoordMsg::RegisterEntity { entity: EntityId(1), island: X86, local_key: web_dom as u64 },
    );
    c.handle(
        Nanos::ZERO,
        CoordMsg::RegisterEntity { entity: EntityId(1), island: IXP, local_key: flow as u64 },
    );
    c
}

#[test]
fn tune_travels_policy_to_scheduler() {
    let mut sched = CreditScheduler::new(SchedConfig::new(2));
    let web = sched.create_domain("web", 256, 1);
    let app = sched.create_domain("app", 256, 1);
    let db = sched.create_domain("db", 256, 1);

    let mut controller = Controller::new();
    controller.handle(
        Nanos::ZERO,
        CoordMsg::RegisterIsland { island: X86, kind: IslandKind::GeneralPurpose },
    );
    for (e, d) in [(1u32, web), (2, app), (3, db)] {
        controller.handle(
            Nanos::ZERO,
            CoordMsg::RegisterEntity { entity: EntityId(e), island: X86, local_key: d.0 as u64 },
        );
    }

    let mut policy = RequestTypePolicy::new(EntityId(1), EntityId(2), EntityId(3), X86);
    let mut mbx: Mailbox<Vec<u8>> = Mailbox::new(Nanos::from_micros(30));

    // A read request classified on the IXP at t=0.
    let msgs = policy.observe(Nanos::ZERO, &Observation::Request { class_id: 1, write: false });
    assert!(!msgs.is_empty());
    for m in &msgs {
        let mut buf = Vec::new();
        wire::encode(m, &mut buf);
        mbx.send(Nanos::ZERO, buf);
    }
    // Nothing before the channel latency elapses.
    let mut delivered = Vec::new();
    mbx.on_timer(Nanos::from_micros(29), &mut delivered);
    assert!(delivered.is_empty());
    mbx.on_timer(Nanos::from_micros(30), &mut delivered);
    assert_eq!(delivered.len(), msgs.len());

    let mut ctl_weights = Vec::new();
    for bytes in delivered {
        let (msg, _) = wire::decode(&bytes).expect("valid wire message");
        for action in controller.handle(Nanos::from_micros(30), msg) {
            let Action::ApplyTune { island, local_key, delta } = action else {
                panic!("expected tunes")
            };
            assert_eq!(island, X86);
            let dom = archipelago::xsched::DomId(local_key as u32);
            let mut ctl = XenCtl::new(&mut sched);
            let new = ctl.adjust_weight(dom, delta as i64).expect("domain exists");
            ctl_weights.push((local_key, new));
        }
    }
    // Read regime: web and app rise to 768; db stays at the 256 base.
    assert!(ctl_weights.contains(&(web.0 as u64, 768)));
    assert!(ctl_weights.contains(&(app.0 as u64, 768)));
    assert_eq!(sched.weight(db).unwrap(), 256);
}

#[test]
fn stream_qos_tandem_reaches_both_islands() {
    let mut controller = registered_controller(1, 0);
    let mut policy = StreamQosPolicy::new(X86, 500).with_tandem_ixp(IXP);
    let msgs = policy.observe(
        Nanos::ZERO,
        &Observation::StreamInfo { entity: EntityId(1), kbps: 1000, fps: 25 },
    );
    assert_eq!(msgs.len(), 2);
    let mut islands = Vec::new();
    for m in msgs {
        for a in controller.handle(Nanos::ZERO, m) {
            let Action::ApplyTune { island, .. } = a else {
                panic!("tunes only")
            };
            islands.push(island);
        }
    }
    assert!(islands.contains(&X86));
    assert!(islands.contains(&IXP));
}

#[test]
fn ixp_tune_changes_flow_threads() {
    let mut island = IxpIsland::new(IxpConfig::default());
    let flow = island.register_flow(1);
    let before = island.flow_threads(flow);
    let mut controller = registered_controller(1, flow.0);
    let actions = controller.handle(
        Nanos::ZERO,
        CoordMsg::Tune { entity: EntityId(1), delta: 2, target: Some(IXP) },
    );
    for a in actions {
        let Action::ApplyTune { island: isl, local_key, delta } = a else {
            panic!("tune")
        };
        assert_eq!(isl, IXP);
        let f = archipelago::ixp::FlowId(local_key as u32);
        island.set_flow_threads(f, (island.flow_threads(f) as i64 + delta as i64) as u32);
    }
    assert_eq!(island.flow_threads(flow), before + 2);
}

#[test]
fn trigger_grants_priority_and_credit() {
    // Four equal-weight domains pile onto one pCPU; the last one in has a
    // tiny burst stuck at the tail of the UNDER queue. A Trigger jumps it
    // to the front; without one it waits out the slices ahead of it.
    let finish_time = |trigger: bool| -> Nanos {
        let mut sched = CreditScheduler::new(SchedConfig::new(1));
        let doms: Vec<_> = (0..3)
            .map(|i| sched.create_domain(&format!("hog{i}"), 256, 1))
            .collect();
        let victim = sched.create_domain("victim", 256, 1);
        for (i, d) in doms.iter().enumerate() {
            sched
                .submit(Nanos::ZERO, *d, Burst::user(Nanos::from_secs(1), i as u64), WakeMode::Plain)
                .unwrap();
        }
        sched
            .submit(Nanos::ZERO, victim, Burst::user(Nanos::from_micros(500), 9), WakeMode::Plain)
            .unwrap();
        if trigger {
            let mut ctl = XenCtl::new(&mut sched);
            ctl.trigger_boost(Nanos::from_micros(100), victim).unwrap();
        }
        let mut evs = Vec::new();
        loop {
            let Some(t) = sched.next_event_time() else { panic!("work pending") };
            assert!(t < Nanos::from_secs(2), "victim never completed");
            evs.clear();
            sched.on_timer(t, &mut evs);
            for ev in &evs {
                if let archipelago::xsched::SchedEvent::Completed { tag: 9, at, .. } = ev {
                    return *at;
                }
            }
        }
    };
    let plain = finish_time(false);
    let triggered = finish_time(true);
    assert!(
        triggered <= Nanos::from_millis(1),
        "triggered victim preempts immediately: {triggered}"
    );
    assert!(
        plain >= Nanos::from_millis(10),
        "plain victim waits behind the queue: {plain}"
    );
}

#[test]
fn unregistered_entity_is_rejected_not_applied() {
    let mut controller = registered_controller(1, 0);
    let actions = controller.handle(
        Nanos::ZERO,
        CoordMsg::Tune { entity: EntityId(99), delta: 64, target: None },
    );
    assert!(actions.is_empty());
    assert_eq!(controller.stats().rejected, 1);
}

#[test]
fn wire_stream_of_policy_output_decodes() {
    let mut policy = RequestTypePolicy::new(EntityId(1), EntityId(2), EntityId(3), X86);
    let mut buf = Vec::new();
    let mut count = 0;
    for (i, write) in [false, true, false, true, true, false].iter().enumerate() {
        let msgs = policy.observe(
            Nanos::from_millis(i as u64),
            &Observation::Request { class_id: i as u16, write: *write },
        );
        for m in msgs {
            wire::encode(&m, &mut buf);
            count += 1;
        }
    }
    let mut off = 0;
    let mut decoded = 0;
    while off < buf.len() {
        let (_, n) = wire::decode(&buf[off..]).expect("self-delimiting stream");
        off += n;
        decoded += 1;
    }
    assert_eq!(decoded, count);
}
