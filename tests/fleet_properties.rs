//! Property tests for the fleet layer's ordering and determinism
//! contracts: Lamport-clock merge monotonicity, `(lamport, source)`
//! tie-breaking, the cross-node envelope codec, and bit-identical
//! same-seed replay of whole sharded fleets across worker counts
//! (the CLI's `--jobs 1` vs `--jobs 4`).

use archipelago::coord::{wire, CoordMsg, EntityId};
use archipelago::fleet::{
    merge_streams, sort_envelopes, BusConfig, Envelope, FleetTopology, LamportClock, NodeId,
};
use archipelago::pcie::FaultProfile;
use archipelago::simcore::Nanos;
use simtest::gen::{domain, vec_of, zip2, zip3, Gen};
use simtest::{check, check_with, st_assert, st_assert_eq, Config};

fn env(lamport: u64, source: u16) -> Envelope {
    Envelope {
        lamport,
        source: NodeId(source),
        msg: CoordMsg::Tune { entity: EntityId(source as u32), delta: 1, target: None },
    }
}

/// Builds one node's envelope stream from positive lamport increments —
/// the shape any real node produces, since its clock strictly increases.
fn stream(source: u16, increments: &[u64]) -> Vec<Envelope> {
    let mut clock = LamportClock::new();
    increments
        .iter()
        .map(|&inc| {
            // `observe` of (now + inc - 1) advances by exactly `inc`.
            let t = clock.observe(clock.now() + inc - 1);
            env(t, source)
        })
        .collect()
}

// ----------------------------------------------------------------------
// Lamport merge: monotone, permutation-complete, associative
// ----------------------------------------------------------------------

#[test]
fn merge_is_monotone_and_preserves_every_envelope() {
    let streams_gen = vec_of(vec_of(Gen::u64_in(1, 5), 0, 12), 1, 6);
    check("merge_is_monotone_and_preserves_every_envelope", &streams_gen, |incs| {
        let streams: Vec<Vec<Envelope>> = incs
            .iter()
            .enumerate()
            .map(|(i, s)| stream(i as u16, s))
            .collect();
        let merged = merge_streams(streams.clone());

        // Monotone: the output key sequence never decreases.
        let keys: Vec<(u64, u16)> = merged.iter().map(Envelope::key).collect();
        st_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "merge output must be non-decreasing in (lamport, source): {keys:?}"
        );

        // Permutation: the merge agrees with a global sort of the union,
        // so nothing is dropped, duplicated, or reordered past its key.
        let mut flat: Vec<Envelope> = streams.iter().flatten().cloned().collect();
        sort_envelopes(&mut flat);
        st_assert_eq!(merged, flat, "merge must equal the globally sorted union");
        Ok(())
    });
}

#[test]
fn merge_is_associative_across_groupings() {
    let streams_gen = vec_of(vec_of(Gen::u64_in(1, 4), 0, 10), 2, 5);
    check("merge_is_associative_across_groupings", &streams_gen, |incs| {
        let streams: Vec<Vec<Envelope>> = incs
            .iter()
            .enumerate()
            .map(|(i, s)| stream(i as u16, s))
            .collect();
        let all_at_once = merge_streams(streams.clone());
        // Pairwise left fold: merge(merge(s0, s1), s2) ...
        let folded = streams
            .clone()
            .into_iter()
            .reduce(|acc, s| merge_streams(vec![acc, s]))
            .unwrap_or_default();
        st_assert_eq!(
            all_at_once, folded,
            "merging all streams at once and pairwise must agree"
        );
        Ok(())
    });
}

// ----------------------------------------------------------------------
// Tie-breaking: equal lamports order by source id
// ----------------------------------------------------------------------

#[test]
fn equal_lamports_order_by_source_id() {
    // Draw lamports from a deliberately small range so ties are common.
    let input = vec_of(zip2(Gen::u64_in(1, 6), Gen::u16_in(0, 9)), 1, 40);
    check("equal_lamports_order_by_source_id", &input, |pairs| {
        let mut envs: Vec<Envelope> =
            pairs.iter().map(|&(l, s)| env(l, s)).collect();
        sort_envelopes(&mut envs);
        for w in envs.windows(2) {
            st_assert!(
                w[0].lamport <= w[1].lamport,
                "lamport order violated: {} after {}",
                w[1].lamport,
                w[0].lamport
            );
            if w[0].lamport == w[1].lamport {
                st_assert!(
                    w[0].source.0 <= w[1].source.0,
                    "tie at lamport {} must order by source: {} after {}",
                    w[0].lamport,
                    w[1].source.0,
                    w[0].source.0
                );
            }
        }
        Ok(())
    });
}

#[test]
fn tie_break_is_deterministic_regardless_of_arrival_order() {
    // Three same-lamport envelopes arriving 3, 1, 2 still sort 1, 2, 3 —
    // every observer lands on the same order however the wire skewed it.
    let mut a = vec![env(7, 3), env(7, 1), env(7, 2)];
    let mut b = vec![env(7, 2), env(7, 3), env(7, 1)];
    sort_envelopes(&mut a);
    sort_envelopes(&mut b);
    assert_eq!(a, b);
    let sources: Vec<u16> = a.iter().map(|e| e.source.0).collect();
    assert_eq!(sources, vec![1, 2, 3]);
}

// ----------------------------------------------------------------------
// Envelope codec
// ----------------------------------------------------------------------

#[test]
fn envelope_codec_roundtrips_generated_messages() {
    let input = zip3(
        domain::coord_msgs(),
        zip2(Gen::u32_any(), Gen::u64_any()),
        Gen::u16_any(),
    );
    check(
        "envelope_codec_roundtrips_generated_messages",
        &input,
        |(msgs, (seq0, lamport0), source)| {
            // Encode the whole batch back-to-back into one buffer, the
            // way a bus lane frames consecutive sends.
            let mut buf = Vec::new();
            for (i, msg) in msgs.iter().enumerate() {
                let seq = seq0.wrapping_add(i as u32);
                let lamport = lamport0.wrapping_add(i as u64);
                wire::encode_envelope(seq, lamport, *source, msg, &mut buf);
            }
            st_assert!(
                msgs.is_empty() || wire::is_envelope(&buf),
                "encoded buffer must carry the envelope tag"
            );
            // Decode sequentially and compare field-for-field.
            let mut off = 0;
            for (i, msg) in msgs.iter().enumerate() {
                let (seq, lamport, src, decoded, used) =
                    wire::decode_envelope(&buf[off..]).map_err(|e| format!("{e:?}"))?;
                st_assert_eq!(seq, seq0.wrapping_add(i as u32));
                st_assert_eq!(lamport, lamport0.wrapping_add(i as u64));
                st_assert_eq!(src, *source);
                st_assert_eq!(&decoded, msg, "inner message must roundtrip");
                off += used;
            }
            st_assert_eq!(off, buf.len(), "decoding must consume the whole buffer");
            Ok(())
        },
    );
}

// ----------------------------------------------------------------------
// Whole-fleet determinism: same seed, same bytes, any worker count
// ----------------------------------------------------------------------

fn bus_for(latency: Nanos, loss: f64) -> BusConfig {
    let mut bus = BusConfig::perfect(latency);
    bus.fault = FaultProfile::none().with_drop(loss);
    bus.reliable.ack_timeout = Nanos::from_nanos(latency.as_nanos() * 3);
    bus
}

#[test]
fn same_seed_fleet_replays_bit_identically_across_jobs() {
    // The F2 contract at its sharpest: a lossy, coordinated, depth-2
    // fleet must produce byte-identical canonical reports (and digests)
    // with 1 worker, 4 workers, and on serial replay.
    let cfg = || {
        let mut c = bench::fleet_cfg(42, 6, 2, bus_for(Nanos::from_millis(3), 0.25), true);
        c.window = Nanos::from_millis(2);
        c
    };
    let serial = bench::run_fleet(cfg(), 2, 3, 1);
    let fanned = bench::run_fleet(cfg(), 2, 3, 4);
    let replay = bench::run_fleet(cfg(), 2, 3, 1);
    assert_eq!(serial.canonical(), fanned.canonical(), "jobs=1 vs jobs=4");
    assert_eq!(serial.canonical(), replay.canonical(), "jobs=1 vs replay");
    assert_eq!(serial.digest(), fanned.digest());
    assert!(serial.total_events() > 0, "the fleet must actually run");
}

#[test]
fn generated_topologies_replay_bit_identically_across_jobs() {
    // Sweep the whole topology domain (shard count, depth, rack size,
    // latency, loss) with a few cases — each builds the fleet twice,
    // once serial and once on 4 workers, and compares canonical bytes.
    check_with(
        &Config::with_cases(10),
        "generated_topologies_replay_bit_identically_across_jobs",
        &domain::fleet_topology(),
        |shape| {
            let cfg = || {
                let mut c = bench::fleet_cfg(
                    97,
                    shape.shards,
                    shape.depth,
                    bus_for(shape.latency, shape.loss),
                    true,
                );
                c.topo = FleetTopology::new(shape.shards, shape.depth, shape.rack_size);
                c
            };
            let serial = bench::run_fleet(cfg(), 1, 2, 1);
            let fanned = bench::run_fleet(cfg(), 1, 2, 4);
            st_assert_eq!(
                serial.canonical(),
                fanned.canonical(),
                "canonical report must not depend on the worker count"
            );
            st_assert_eq!(serial.digest(), fanned.digest());
            Ok(())
        },
    );
}
