//! Property tests for the energy-under-QoS dimension: target
//! monotonicity of the controller's lattice walk, bit-identical replay
//! of energy-managed platform runs (the E1 coordinated arm), and
//! knob-flapping at the QoS boundary under an active chaos schedule.

use archipelago::coord::{EnergyController, EnergyControllerConfig, KnobPoint};
use archipelago::platform::{
    ChaosPlan, EnergyConfig, PlatformBuilder, PolicyKind, RubisScenario,
};
use archipelago::simcore::Nanos;
use simtest::gen::{zip2, zip3, Gen};
use simtest::runner::Config;
use simtest::{check, check_with, st_assert, st_assert_eq};

/// Drives a controller open-loop against a synthetic monotone latency
/// model — each rung of total descent depth adds `per_rung_ms` to a base
/// p99 — until it settles, and returns the final lattice point.
fn converge(target_ms: f64, base_ms: f64, per_rung_ms: f64) -> KnobPoint {
    let mut c =
        EnergyController::new(EnergyControllerConfig::default().with_target_ms(target_ms));
    for i in 1..=400u64 {
        let p99 = base_ms + c.point().depth() as f64 * per_rung_ms;
        c.observe(Nanos::from_secs(2 * i), p99);
    }
    c.point()
}

/// The depth of the deepest *feasible* point a converged walk stands
/// for. At a marginal operating point the controller flaps between the
/// deepest feasible rung and the first violating one (the oscillation
/// detector bounds the rate, not the band), so a run may end mid-probe
/// one rung too deep; the solution it is probing from is one rung up.
fn feasible_depth(target_ms: f64, base_ms: f64, per_rung_ms: f64) -> u32 {
    let p = converge(target_ms, base_ms, per_rung_ms);
    let p99 = base_ms + p.depth() as f64 * per_rung_ms;
    if p99 > target_ms {
        p.depth().saturating_sub(1)
    } else {
        p.depth()
    }
}

#[test]
fn tighter_qos_target_never_settles_at_lower_power() {
    // Depth is the power-order proxy (deeper = lower power on a monotone
    // ladder): for the same monotone latency response, the solution a
    // tighter target converges to must never be deeper than a looser
    // target's — energy management under a stricter SLA can only give
    // back savings, never conjure more.
    let cases = zip3(
        zip2(Gen::u64_in(50, 2_000), Gen::u64_in(0, 2_000)), // (tight, slack)
        Gen::u64_in(1, 1_000),                               // base p99 ms
        Gen::u64_in(1, 400),                                 // ms per rung
    );
    check(
        "energy_target_monotonicity",
        &cases,
        |&((tight, slack), base, per_rung)| {
            let loose = (tight + slack) as f64;
            let tight = tight as f64;
            let (base, per_rung) = (base as f64, per_rung as f64);
            let d_tight = feasible_depth(tight, base, per_rung);
            let d_loose = feasible_depth(loose, base, per_rung);
            st_assert!(
                d_tight <= d_loose,
                "tighter target {tight} ms settled deeper (depth {d_tight}) than \
                 looser {loose} ms (depth {d_loose}) on base {base} + {per_rung}/rung"
            );
            Ok(())
        },
    );
}

#[test]
fn energy_managed_runs_replay_bit_identically() {
    // The E1 coordinated arm — controller live, SetKnob messages riding
    // the real coordination channel, DVFS scaling the credit scheduler —
    // must replay bit-identically for any seed: joules, residency and
    // knob decisions included.
    let fingerprint = |seed: u64| {
        let mut sim = PlatformBuilder::new()
            .seed(seed)
            .policy(PolicyKind::RequestType)
            .energy(EnergyConfig::coordinated(800.0))
            .build_rubis(RubisScenario::read_write_mix(8));
        let r = sim.run(Nanos::from_secs(20));
        (
            r.rubis.completed,
            r.rubis.throughput.to_bits(),
            r.energy.cpu_joules.to_bits(),
            r.energy.ixp_joules.to_bits(),
            r.energy.residency.clone(),
            r.energy.violations,
            r.energy.knob_actions,
            r.energy.descents,
            r.coord.messages_sent,
        )
    };
    check_with(
        &Config::with_cases(16),
        "energy_replay",
        &Gen::u64_in(0, u64::MAX - 1),
        |&seed| {
            let a = fingerprint(seed);
            st_assert_eq!(a, fingerprint(seed));
            st_assert!(a.6 > 0, "controller never moved a knob in 20 s of headroom");
            Ok(())
        },
    );
}

#[test]
fn knob_flapping_at_the_qos_boundary_cannot_wedge_the_platform() {
    // A target sitting right on the unmanaged tail keeps the controller
    // at the descend → violate → back-off boundary for the whole run,
    // while a seeded chaos schedule perturbs the platform underneath it.
    // The run must terminate, keep completing requests, and the
    // oscillation detector must be what bounds the flapping — not a
    // deadlock.
    let mut sim = PlatformBuilder::new()
        .seed(1301)
        .policy(PolicyKind::RequestType)
        .energy(EnergyConfig::coordinated(300.0))
        .chaos(ChaosPlan::seeded(0xE0_5EED, 12))
        .build_rubis(RubisScenario::read_write_mix(8));
    let r = sim.run(Nanos::from_secs(120));
    assert!(sim.chaos_injected() > 0, "chaos plan injected nothing in 120 s");
    assert!(r.rubis.completed > 0, "platform stopped serving at the QoS boundary");
    assert!(r.energy.knob_actions > 0, "controller never probed the boundary");
    assert!(
        r.energy.violations > 0,
        "target {} ms never violated — not a boundary workload",
        r.energy.p99_target_ms
    );
    assert!(
        r.energy.backoffs > 0,
        "violations without back-offs: controller wedged below target"
    );
}
