//! Properties of the fault-injection and reliable-delivery layer.
//!
//! These pin the contracts ISSUE 3 introduced: message conservation on a
//! faulty mailbox, FIFO delivery whenever reordering is disabled (even
//! across live latency changes), eventual delivery through the ack/retry
//! protocol for any loss rate below 1.0, and byte-level determinism of
//! same-seed faulty runs.

use archipelago::coord::{
    wire, CoordMsg, EntityId, ReliableConfig, ReliableReceiver, ReliableSender,
};
use archipelago::pcie::{FaultProfile, Mailbox};
use archipelago::platform::{PlatformBuilder, PolicyKind, RubisScenario};
use archipelago::simcore::{Nanos, SimRng};
use simtest::gen::{domain, vec_of, zip2, Gen};
use simtest::{check, st_assert, st_assert_eq};

/// `delivered + dropped + in_flight == sent + duplicated` must hold at
/// every observable point, under any fault profile, and in_flight must
/// reach zero once the horizon passes every scheduled arrival.
#[test]
fn mailbox_conserves_messages_under_any_profile() {
    let gen = zip2(
        domain::fault_profile(),
        vec_of(Gen::u64_in(0, 500), 1, 60),
    );
    check("mailbox_conserves_messages_under_any_profile", &gen, |case| {
        let (profile, gaps_us) = case;
        let mut mbx: Mailbox<u32> = Mailbox::new(Nanos::from_micros(30));
        mbx.set_faults(*profile, SimRng::new(0xC0_45EED));
        let mut now = Nanos::ZERO;
        let mut out = Vec::new();
        for (i, &gap) in gaps_us.iter().enumerate() {
            now += Nanos::from_micros(gap);
            mbx.send(now, i as u32);
            st_assert_eq!(
                mbx.delivered() + mbx.dropped() + mbx.in_flight(),
                mbx.sent() + mbx.duplicated(),
                "conservation violated after send {i}"
            );
            if i % 3 == 0 {
                out.clear();
                mbx.on_timer(now, &mut out);
                st_assert_eq!(
                    mbx.delivered() + mbx.dropped() + mbx.in_flight(),
                    mbx.sent() + mbx.duplicated(),
                    "conservation violated after drain at {now:?}"
                );
            }
        }
        out.clear();
        mbx.on_timer(Nanos::MAX, &mut out);
        st_assert_eq!(mbx.in_flight(), 0, "messages stuck in flight at the horizon");
        st_assert_eq!(
            mbx.delivered() + mbx.dropped(),
            mbx.sent() + mbx.duplicated(),
            "final conservation violated"
        );
        Ok(())
    });
}

/// With `reorder_window == 0` the mailbox must deliver in send order no
/// matter what jitter the profile adds and no matter how `set_latency`
/// moves while traffic is in flight. Duplicate copies may repeat a value
/// but never overtake later sends.
#[test]
fn mailbox_is_fifo_whenever_reordering_is_disabled() {
    let profile = domain::fault_profile().map(|p| p.with_reorder(Nanos::ZERO));
    // (inter-send gap µs, latency to switch to µs) per step.
    let step = zip2(Gen::u64_in(0, 200), Gen::u64_in(1, 120));
    let gen = zip2(profile, vec_of(step, 2, 80));
    check("mailbox_is_fifo_whenever_reordering_is_disabled", &gen, |case| {
        let (profile, steps) = case;
        let mut mbx: Mailbox<usize> = Mailbox::new(Nanos::from_micros(30));
        mbx.set_faults(*profile, SimRng::new(0xF1F0));
        let mut now = Nanos::ZERO;
        for (i, &(gap_us, lat_us)) in steps.iter().enumerate() {
            now += Nanos::from_micros(gap_us);
            mbx.set_latency(Nanos::from_micros(lat_us));
            mbx.send(now, i);
        }
        let mut out = Vec::new();
        mbx.on_timer(Nanos::MAX, &mut out);
        st_assert!(
            out.windows(2).all(|w| w[0] <= w[1]),
            "FIFO violated with reordering disabled: {out:?}"
        );
        if mbx.duplicated() == 0 {
            st_assert!(
                out.windows(2).all(|w| w[0] < w[1]),
                "unexpected repeat without duplication: {out:?}"
            );
        }
        Ok(())
    });
}

/// Drives a [`ReliableSender`]/[`ReliableReceiver`] pair over two faulty
/// mailboxes (forward data, reverse acks) until no event remains.
/// Returns (accepted, gave_up, pending_left).
fn run_reliable_exchange(profile: FaultProfile, n: u32, seed: u64) -> (u32, u64, usize) {
    let mut fwd: Mailbox<Vec<u8>> = Mailbox::new(Nanos::from_micros(30));
    let mut back: Mailbox<Vec<u8>> = Mailbox::new(Nanos::from_micros(30));
    fwd.set_faults(profile, SimRng::new(seed ^ 0x0DD));
    back.set_faults(profile, SimRng::new(seed ^ 0xACC));
    // Constant timeout and a deep retry budget: with loss capped at 0.5
    // per direction a round trip succeeds with probability >= 0.25 per
    // attempt, so 200 tries fail with probability ~1e-25.
    let cfg = ReliableConfig {
        ack_timeout: Nanos::from_micros(400),
        backoff: 1,
        max_retries: 200,
        degraded_after: 4,
    };
    let mut tx = ReliableSender::new(cfg);
    let mut rx = ReliableReceiver::new();
    let mut accepted = 0u32;
    let mut buf = Vec::new();
    for i in 0..n {
        let now = Nanos::from_micros(i as u64);
        let msg = CoordMsg::Tune { entity: EntityId(i), delta: i as i32, target: None };
        let seq = tx.send(now, msg);
        buf.clear();
        wire::encode_framed(seq, &msg, &mut buf);
        fwd.send(now, buf.clone());
    }
    let mut out = Vec::new();
    let mut retx = Vec::new();
    loop {
        let next = [fwd.next_event_time(), back.next_event_time(), tx.next_timer()]
            .into_iter()
            .flatten()
            .min();
        let Some(now) = next else { break };
        out.clear();
        fwd.on_timer(now, &mut out);
        for bytes in &out {
            let (seq, _, _) = wire::decode_framed(bytes).expect("framed coord msg");
            buf.clear();
            wire::encode(&CoordMsg::Ack { seq }, &mut buf);
            back.send(now, buf.clone());
            if rx.accept(seq) {
                accepted += 1;
            }
        }
        out.clear();
        back.on_timer(now, &mut out);
        for bytes in &out {
            if let Ok((CoordMsg::Ack { seq }, _)) = wire::decode(bytes) {
                tx.on_ack(now, seq);
            }
        }
        retx.clear();
        tx.on_timer(now, &mut retx);
        for &(seq, msg) in &retx {
            buf.clear();
            wire::encode_framed(seq, &msg, &mut buf);
            fwd.send(now, buf.clone());
        }
    }
    (accepted, tx.stats().gave_up, tx.pending_len())
}

/// As long as loss stays below 1.0, retransmission must deliver every
/// message exactly once — regardless of duplication, jitter, or
/// reordering riding along on the same profile.
#[test]
fn retransmission_eventually_delivers_every_message() {
    let gen = zip2(
        zip2(domain::fault_profile(), Gen::u64_any()),
        Gen::u32_in(1, 30),
    );
    check("retransmission_eventually_delivers_every_message", &gen, |case| {
        let ((profile, seed), n) = case;
        let (accepted, gave_up, pending) = run_reliable_exchange(*profile, *n, *seed);
        st_assert_eq!(accepted, *n, "not every message was accepted exactly once");
        st_assert_eq!(gave_up, 0, "sender gave up despite loss < 1.0");
        st_assert_eq!(pending, 0, "sender still holds pending entries after drain");
        Ok(())
    });
}

/// Two runs of the same faulty mailbox schedule from the same seed must
/// produce identical delivery sequences and identical counters.
#[test]
fn same_seed_faulty_runs_are_identical() {
    let gen = zip2(
        zip2(domain::fault_profile(), Gen::u64_any()),
        vec_of(Gen::u64_in(0, 300), 1, 60),
    );
    check("same_seed_faulty_runs_are_identical", &gen, |case| {
        let ((profile, seed), gaps_us) = case;
        let run = || {
            let mut mbx: Mailbox<u32> = Mailbox::new(Nanos::from_micros(25));
            mbx.set_faults(*profile, SimRng::new(*seed));
            let mut now = Nanos::ZERO;
            let mut log = Vec::new();
            let mut out = Vec::new();
            for (i, &gap) in gaps_us.iter().enumerate() {
                now += Nanos::from_micros(gap);
                mbx.send(now, i as u32);
                out.clear();
                mbx.on_timer(now, &mut out);
                log.extend(out.iter().copied());
            }
            out.clear();
            mbx.on_timer(Nanos::MAX, &mut out);
            log.extend(out.iter().copied());
            (log, mbx.sent(), mbx.delivered(), mbx.dropped(), mbx.duplicated())
        };
        st_assert_eq!(run(), run(), "same-seed faulty runs diverged");
        Ok(())
    });
}

/// Full-platform determinism: an identical faulty, reliable build must
/// reproduce the exact same report twice.
#[test]
fn faulty_platform_runs_are_deterministic() {
    let run = || {
        let mut sim = PlatformBuilder::new()
            .seed(42)
            .policy(PolicyKind::RequestType)
            .fault_profile(FaultProfile::none().with_drop(0.2).with_dup(0.05))
            .reliable_delivery(ReliableConfig::default())
            .build_rubis(RubisScenario::read_write_mix(8));
        let r = sim.run(Nanos::from_secs(5));
        (
            r.rubis.completed,
            r.rubis.throughput.to_bits(),
            r.coord.messages_sent,
            r.coord.channel_drops,
            r.coord.channel_dups,
            r.coord.retransmits,
            r.coord.acked,
            r.coord.dup_suppressed,
            r.coord.tunes_applied,
        )
    };
    assert_eq!(run(), run(), "same-seed faulty platform runs diverged");
}

/// Integration: under 30% loss with reliable delivery on, the channel
/// machinery must actually engage (drops happen, retransmits recover
/// them, tunes still land) rather than silently degrade to no-ops.
#[test]
fn reliable_delivery_recovers_tunes_under_loss() {
    let mut sim = PlatformBuilder::new()
        .seed(7)
        .policy(PolicyKind::RequestType)
        .fault_profile(FaultProfile::none().with_drop(0.3))
        .reliable_delivery(ReliableConfig::default())
        .build_rubis(RubisScenario::read_write_mix(8));
    let r = sim.run(Nanos::from_secs(20));
    assert!(r.coord.messages_sent > 0, "policy sent no coordination messages");
    assert!(r.coord.channel_drops > 0, "fault layer never dropped at 30% loss");
    assert!(r.coord.retransmits > 0, "no retransmissions despite drops");
    assert!(r.coord.acked > 0, "no acks made it back");
    assert!(r.coord.tunes_applied > 0, "no tunes survived the lossy channel");
}

/// A default build (no fault profile, no reliable config) must report
/// all-zero channel fault counters — the new machinery is pay-as-you-go.
#[test]
fn default_build_reports_zero_fault_counters() {
    let mut sim = PlatformBuilder::new()
        .seed(7)
        .policy(PolicyKind::RequestType)
        .build_rubis(RubisScenario::read_write_mix(8));
    let r = sim.run(Nanos::from_secs(5));
    assert_eq!(r.coord.channel_drops, 0);
    assert_eq!(r.coord.channel_dups, 0);
    assert_eq!(r.coord.retransmits, 0);
    assert_eq!(r.coord.acked, 0);
    assert_eq!(r.coord.gave_up, 0);
    assert_eq!(r.coord.dup_suppressed, 0);
    assert_eq!(r.coord.degraded_entries, 0);
    assert_eq!(r.coord.degraded_suppressed, 0);
}
