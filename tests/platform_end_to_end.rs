//! End-to-end integration tests across all crates: the assembled platform
//! must reproduce the paper's qualitative results deterministically.

use archipelago::coord::PolicyKind;
use archipelago::platform::{MplayerScenario, PlatformBuilder, RubisScenario, RunReport};
use archipelago::simcore::Nanos;

fn rubis(policy: PolicyKind, seed: u64, secs: u64) -> RunReport {
    let mut sim = PlatformBuilder::new()
        .seed(seed)
        .policy(policy)
        .build_rubis(RubisScenario::read_write_mix(24));
    sim.run(Nanos::from_secs(secs))
}

#[test]
fn rubis_baseline_completes_requests() {
    let r = rubis(PolicyKind::None, 1, 30);
    assert!(r.rubis.completed > 500, "completed {}", r.rubis.completed);
    assert!(r.rubis.throughput > 20.0);
    assert!(r.rubis.sessions > 10);
    assert!(r.rubis.responses.types() >= 14, "most request types seen");
    // Every response is positive and bounded by the run length.
    let o = r.rubis.responses.overall();
    assert!(o.min() > 0.0);
    assert!(o.max() < 30_000.0);
}

#[test]
fn rubis_is_deterministic_per_seed() {
    let a = rubis(PolicyKind::RequestType, 42, 20);
    let b = rubis(PolicyKind::RequestType, 42, 20);
    assert_eq!(a.rubis.completed, b.rubis.completed);
    assert_eq!(a.coord.messages_sent, b.coord.messages_sent);
    assert_eq!(a.net.guest_drops, b.net.guest_drops);
    let c = rubis(PolicyKind::RequestType, 43, 20);
    assert_ne!(
        (a.rubis.completed, a.net.guest_drops),
        (c.rubis.completed, c.net.guest_drops),
        "different seeds should differ"
    );
}

#[test]
fn coordination_tames_tails_across_seeds() {
    // The paper's Figure 4 claim: peak-latency alleviation and lower
    // per-run standard deviation. σ improves on every seed; maxima and
    // drops improve in aggregate.
    let mut agg = [(0.0f64, 0.0f64, 0u64), (0.0, 0.0, 0)]; // (sd, max, drops)
    for seed in [42, 7, 99, 1234, 5, 777] {
        for (i, policy) in [PolicyKind::None, PolicyKind::RequestType].into_iter().enumerate() {
            let r = rubis(policy, seed, 300);
            let o = r.rubis.responses.overall().clone();
            agg[i].0 += o.std_dev();
            agg[i].1 += o.max();
            agg[i].2 += r.net.guest_drops;
        }
    }
    let (base, coord) = (agg[0], agg[1]);
    assert!(
        coord.0 < base.0 * 0.9,
        "σ falls ≥10% in aggregate: {:.0} vs {:.0}",
        coord.0,
        base.0
    );
    assert!(
        coord.1 < base.1 * 0.9,
        "peak latencies alleviated: {:.0} vs {:.0}",
        coord.1,
        base.1
    );
    assert!(
        coord.2 < base.2,
        "overflow drops fall in aggregate: {} vs {}",
        coord.2,
        base.2
    );
}

#[test]
fn coordination_messages_flow_and_none_rejected() {
    let r = rubis(PolicyKind::RequestType, 42, 30);
    assert!(r.coord.messages_sent > 100, "per-request regime flips");
    assert!(r.coord.bytes_sent >= r.coord.messages_sent * 11, "11-byte tunes");
    assert_eq!(r.coord.rejected, 0, "all entities registered");
    // Serialized application may leave a few messages in flight at the
    // end of the run; none are lost on the way.
    assert!(r.coord.tunes_applied <= r.coord.messages_sent);
    assert!(r.coord.messages_sent - r.coord.tunes_applied < 20);
}

#[test]
fn baseline_sends_no_coordination() {
    let r = rubis(PolicyKind::None, 42, 20);
    assert_eq!(r.coord.messages_sent, 0);
    assert_eq!(r.coord.tunes_applied, 0);
    assert_eq!(r.coord.triggers_applied, 0);
}

#[test]
fn hysteresis_sends_far_fewer_messages() {
    let per_request = rubis(PolicyKind::RequestType, 42, 30);
    let hysteresis = rubis(PolicyKind::RequestTypeHysteresis, 42, 30);
    assert!(
        hysteresis.coord.messages_sent * 10 < per_request.coord.messages_sent,
        "hysteresis {} vs per-request {}",
        hysteresis.coord.messages_sent,
        per_request.coord.messages_sent
    );
}

#[test]
fn browsing_mix_issues_only_read_types() {
    let mut sim = PlatformBuilder::new()
        .seed(5)
        .build_rubis(RubisScenario::browsing_mix(12));
    let r = sim.run(Nanos::from_secs(20));
    for (name, _) in r.rubis.responses.iter() {
        assert!(
            !matches!(
                name,
                "Register" | "BuyNow" | "PutBidAuth" | "PutBid" | "StoreBid" | "PutComment" | "Sell"
            ),
            "write type {name} in browsing mix"
        );
    }
}

#[test]
fn cpu_accounting_is_consistent() {
    let r = rubis(PolicyKind::None, 9, 30);
    let sum: f64 = r.cpu.iter().map(|d| d.percent).sum();
    assert!((sum - r.total_cpu_percent).abs() < 1e-6);
    // Two pCPUs bound the total.
    assert!(r.total_cpu_percent <= 200.0 + 1e-6);
    for d in &r.cpu {
        assert!(
            (d.user + d.system - d.percent).abs() < 0.5,
            "{}: user {} + sys {} != {}",
            d.name,
            d.user,
            d.system,
            d.percent
        );
    }
    // The web/app/db tiers do real work in a saturated run.
    for name in ["web", "app", "db"] {
        assert!(r.cpu_percent(name) > 10.0, "{name} busy");
    }
}

#[test]
fn cpu_series_sampled_once_per_second() {
    let r = rubis(PolicyKind::None, 3, 20);
    let (_, series) = r
        .cpu_series
        .iter()
        .find(|(n, _)| n == "web")
        .expect("web series");
    assert!(
        (series.len() as i64 - 20).abs() <= 1,
        "one sample per second, got {}",
        series.len()
    );
}

#[test]
fn figure6_shape_holds() {
    let run = |w1, w2| {
        let mut sim = PlatformBuilder::new()
            .seed(42)
            .build_mplayer(MplayerScenario::figure6(w1, w2));
        let r = sim.run(Nanos::from_secs(60));
        (
            r.player("dom1").unwrap().achieved_fps,
            r.player("dom2").unwrap().achieved_fps,
        )
    };
    let (d1_base, d2_base) = run(256, 256);
    let (d1_coord, d2_coord) = run(384, 512);
    assert!(d1_base < 20.0, "dom1 misses at default weights: {d1_base}");
    assert!(d2_base < 25.0, "dom2 misses at default weights: {d2_base}");
    assert!(d1_coord >= 20.0, "dom1 meets when coordinated: {d1_coord}");
    assert!(d2_coord >= 25.0, "dom2 meets when coordinated: {d2_coord}");
    assert!(d2_coord > d2_base + 3.0, "dom2 improves substantially");
}

#[test]
fn trigger_coordination_improves_boosted_domain() {
    let run = |policy| {
        let mut sim = PlatformBuilder::new()
            .seed(42)
            .policy(policy)
            .build_mplayer(MplayerScenario::trigger_setup());
        sim.run(Nanos::from_secs(120))
    };
    let base = run(PolicyKind::None);
    let coord = run(PolicyKind::BufferTrigger);
    let b1 = base.player("dom1").unwrap().achieved_fps;
    let c1 = coord.player("dom1").unwrap().achieved_fps;
    let b2 = base.player("dom2").unwrap().achieved_fps;
    let c2 = coord.player("dom2").unwrap().achieved_fps;
    assert!(c1 > b1 * 1.03, "boosted domain gains ≥3%: {b1} → {c1}");
    assert!(c2 < b2, "colocated domain pays: {b2} → {c2}");
    assert!(c2 > b2 * 0.85, "interference bounded: {b2} → {c2}");
    assert!(coord.coord.triggers_applied > 100);
    assert_eq!(base.coord.triggers_applied, 0);
    // The monitored buffer drains under coordination.
    assert!(coord.buffer_series.mean() < base.buffer_series.mean() * 0.8);
}

#[test]
fn trigger_rate_limit_bounds_interference() {
    let run = |rate: f64| {
        let mut sim = PlatformBuilder::new()
            .seed(42)
            .policy(PolicyKind::BufferTrigger)
            .trigger_rate_limit(rate)
            .build_mplayer(MplayerScenario::trigger_setup());
        sim.run(Nanos::from_secs(60))
    };
    let slow = run(0.5);
    let fast = run(50.0);
    assert!(slow.coord.triggers_applied < fast.coord.triggers_applied);
}

#[test]
fn channel_latency_is_configurable() {
    // A glacial channel must not break anything — coordination still
    // applies, just late.
    let mut sim = PlatformBuilder::new()
        .seed(42)
        .policy(PolicyKind::RequestType)
        .coord_latency(Nanos::from_millis(50))
        .build_rubis(RubisScenario::read_write_mix(24));
    let r = sim.run(Nanos::from_secs(20));
    assert!(r.coord.tunes_applied > 0);
    assert!(r.rubis.completed > 200);
}

#[test]
fn report_player_and_cpu_lookups() {
    let mut sim = PlatformBuilder::new()
        .seed(1)
        .build_mplayer(MplayerScenario::figure6(256, 256));
    let r = sim.run(Nanos::from_secs(10));
    assert!(r.player("dom1").is_some());
    assert!(r.player("nope").is_none());
    assert!(r.cpu_percent("dom0") >= 0.0);
    assert_eq!(r.cpu_percent("nope"), 0.0);
    assert!(r.rubis.completed == 0, "no rubis in mplayer scenario");
}

#[test]
fn power_cap_holds_and_priority_strategy_preserves_qos() {
    use archipelago::platform::PowerStrategy;
    let run = |cap: Option<(f64, PowerStrategy)>| {
        let mut b = PlatformBuilder::new().seed(42);
        if let Some((w, s)) = cap {
            b = b.power_cap(w, s);
        }
        let mut sim = b.build_mplayer(MplayerScenario::figure6(384, 512));
        sim.run(Nanos::from_secs(90))
    };
    let uncapped = run(None);
    assert!(uncapped.power.mean_watts > 110.0, "{}", uncapped.power.mean_watts);
    assert_eq!(uncapped.power.cap_actions, 0);
    let naive = run(Some((105.0, PowerStrategy::BiggestConsumer)));
    let coord = run(Some((
        105.0,
        PowerStrategy::Priority(vec!["dom0".into(), "dom1".into(), "dom2".into()]),
    )));
    for r in [&naive, &coord] {
        assert!(r.power.cap_actions > 0, "governor acted");
        assert!(
            r.power.mean_watts < uncapped.power.mean_watts - 5.0,
            "power actually fell: {}",
            r.power.mean_watts
        );
    }
    let fps2 = |r: &RunReport| r.player("dom2").unwrap().achieved_fps;
    assert!(
        fps2(&coord) > fps2(&naive) + 5.0,
        "priority strategy preserves the high-priority stream: {} vs {}",
        fps2(&coord),
        fps2(&naive)
    );
    assert!(fps2(&coord) > 24.0, "dom2 still streams: {}", fps2(&coord));
}

#[test]
fn power_series_is_sampled_for_every_run() {
    let mut sim = PlatformBuilder::new()
        .seed(3)
        .build_rubis(RubisScenario::read_write_mix(24));
    let r = sim.run(Nanos::from_secs(10));
    assert!((r.power.series.len() as i64 - 10).abs() <= 1);
    assert!(r.power.mean_watts > 40.0, "at least CPU idle + IXP static");
    assert!(r.power.cap_watts.is_none());
}

#[test]
fn stream_qos_policy_tunes_from_rtsp_setup() {
    let mut sim = PlatformBuilder::new()
        .seed(42)
        .policy(PolicyKind::StreamQos)
        .build_mplayer(MplayerScenario::figure6(256, 256));
    let r = sim.run(Nanos::from_secs(30));
    // One high-rate stream (weight + tandem thread tune) and one low-rate
    // stream (weight decrease): at least three tunes total.
    assert!(r.coord.messages_sent >= 3, "msgs {}", r.coord.messages_sent);
    assert!(r.coord.tunes_applied >= 3);
    assert_eq!(r.coord.rejected, 0);
}
