//! End-to-end tests of the three-island inference platform: the accel
//! island must be coordinated through the same Tune/Trigger machinery as
//! the original two islands, and the default two-island builds must not
//! know it exists.

use archipelago::coord::PolicyKind;
use archipelago::platform::{InferenceScenario, PlatformBuilder, RubisScenario, RunReport};
use archipelago::simcore::Nanos;

fn inference(policy: PolicyKind, seed: u64, secs: u64) -> RunReport {
    let scen = if policy == PolicyKind::BufferTrigger {
        InferenceScenario::trigger_setup()
    } else {
        InferenceScenario::mixed_tenants()
    };
    let mut sim = PlatformBuilder::new()
        .seed(seed)
        .policy(policy)
        .build_inference(scen);
    sim.run(Nanos::from_secs(secs))
}

#[test]
fn inference_baseline_completes_requests() {
    let r = inference(PolicyKind::None, 1, 20);
    assert!(r.rubis.completed > 2_000, "completed {}", r.rubis.completed);
    assert_eq!(r.accel.tenants.len(), 4);
    for t in &r.accel.tenants {
        assert!(t.submitted > 0, "{} submitted nothing", t.name);
        assert!(t.completed > 0, "{} completed nothing", t.name);
        assert!(t.batches > 0, "{} launched no batches", t.name);
        assert!(t.mean_batch >= 1.0, "{} batch size {}", t.name, t.mean_batch);
        assert!(
            r.rubis.responses.percentile(&t.name, 0.5) > 0.0,
            "{} has no latency samples",
            t.name
        );
    }
    assert!(r.accel.hbm_high_water > 0);
    // Uncoordinated: not a single coordination message.
    assert_eq!(r.coord.messages_sent, 0);
    assert_eq!(r.coord.tunes_applied, 0);
}

#[test]
fn inference_is_deterministic_per_seed() {
    let a = inference(PolicyKind::InferenceBatch, 42, 15);
    let b = inference(PolicyKind::InferenceBatch, 42, 15);
    assert_eq!(a.rubis.completed, b.rubis.completed);
    assert_eq!(a.coord.messages_sent, b.coord.messages_sent);
    assert_eq!(a.coord.tunes_applied, b.coord.tunes_applied);
    let pair = |r: &RunReport| {
        r.accel
            .tenants
            .iter()
            .map(|t| (t.batches, t.completed))
            .collect::<Vec<_>>()
    };
    assert_eq!(pair(&a), pair(&b));
    let c = inference(PolicyKind::InferenceBatch, 43, 15);
    assert_ne!(a.rubis.completed, c.rubis.completed, "seeds should differ");
}

#[test]
fn batch_tuning_reaches_the_accelerator() {
    let r = inference(PolicyKind::InferenceBatch, 7, 20);
    // One classify-driven Tune per tenant crosses both mailbox lanes and
    // lands on the device via its ResourceManager.
    assert!(r.coord.messages_sent >= 4, "messages {}", r.coord.messages_sent);
    assert_eq!(r.coord.tunes_applied, 4, "tunes {}", r.coord.tunes_applied);
    assert_eq!(r.coord.rejected, 0);
}

#[test]
fn coordinated_batching_cuts_interactive_queueing() {
    // The I1 claim in miniature: leaning interactive tenants toward small
    // batches (and up-weighting them) cuts their batch-forming delay.
    let base = inference(PolicyKind::None, 11, 30);
    let coord = inference(PolicyKind::InferenceBatch, 11, 30);
    let q99 = |r: &RunReport, name: &str| {
        r.accel.tenant(name).map(|t| t.queue_p99_ms).unwrap_or(f64::MAX)
    };
    let lat_base = q99(&base, "chat") + q99(&base, "vision");
    let lat_coord = q99(&coord, "chat") + q99(&coord, "vision");
    assert!(
        lat_coord < lat_base,
        "interactive queue p99 should shrink: base {lat_base:.2}ms coord {lat_coord:.2}ms"
    );
    // Throughput tenants keep completing work.
    let goodput = |r: &RunReport| {
        r.accel.tenant("rank").map(|t| t.completed).unwrap_or(0)
            + r.accel.tenant("embed").map(|t| t.completed).unwrap_or(0)
    };
    assert!(
        goodput(&coord) as f64 >= goodput(&base) as f64 * 0.95,
        "batch goodput should hold: base {} coord {}",
        goodput(&base),
        goodput(&coord)
    );
}

#[test]
fn queue_alarms_drive_batch_preemptions() {
    let r = inference(PolicyKind::BufferTrigger, 3, 20);
    let alarms: u64 = r.accel.tenants.iter().map(|t| t.alarms).sum();
    let preemptions: u64 = r.accel.tenants.iter().map(|t| t.preemptions).sum();
    assert!(alarms > 0, "no queue alarms fired");
    assert!(r.coord.triggers_applied > 0, "no triggers applied");
    assert!(preemptions > 0, "no batches preempted");
}

#[test]
fn rubis_report_carries_no_accel_block() {
    let mut sim = PlatformBuilder::new()
        .seed(1)
        .build_rubis(RubisScenario::read_write_mix(8));
    let r = sim.run(Nanos::from_secs(5));
    assert!(r.accel.tenants.is_empty());
    assert_eq!(r.accel.hbm_high_water, 0);
    assert_eq!(r.accel.hbm_rejects, 0);
}
