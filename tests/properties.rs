//! Property-based tests over the core data structures and invariants,
//! running on the hermetic `simtest` harness. The twelve properties (and
//! their invariants) are carried over verbatim from the original proptest
//! suite; on failure each prints a `SIMTEST_SEED` that replays the exact
//! case.

use archipelago::coord::{wire, EntityId, IslandId, Registry, TokenBucket};
use archipelago::ixp::{AppTag, Packet, ThreadPool};
use archipelago::simcore::stats::{OnlineStats, Summary};
use archipelago::simcore::{EventQueue, Nanos, SimRng};
use archipelago::xsched::{Burst, CreditScheduler, SchedConfig, WakeMode};
use simtest::gen::{domain, vec_of, zip2, zip3, Gen};
use simtest::{check, check_with, st_assert, st_assert_eq, Config};

// ----------------------------------------------------------------------
// simcore
// ----------------------------------------------------------------------

#[test]
fn event_queue_pops_in_time_order() {
    let times = vec_of(Gen::u64_in(0, 999_999), 1, 199);
    check("event_queue_pops_in_time_order", &times, |times| {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos(t), i);
        }
        let mut last = None;
        let mut popped = 0;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                st_assert!(t >= lt, "time order violated: {t:?} after {lt:?}");
                if t == lt {
                    st_assert!(idx > lidx, "FIFO among ties violated");
                }
            }
            st_assert_eq!(Nanos(times[idx]), t, "event carries its scheduled time");
            last = Some((t, idx));
            popped += 1;
        }
        st_assert_eq!(popped, times.len());
        Ok(())
    });
}

#[test]
fn event_queue_cancellation_removes_exactly_the_cancelled() {
    let input = zip2(
        vec_of(Gen::u64_in(0, 999_999), 1, 99),
        vec_of(Gen::bool_any(), 1, 99),
    );
    check(
        "event_queue_cancellation_removes_exactly_the_cancelled",
        &input,
        |(times, cancel_mask)| {
            let mut q = EventQueue::new();
            let keys: Vec<_> = times.iter().map(|&t| q.schedule(Nanos(t), t)).collect();
            let mut expected = 0;
            for (i, k) in keys.iter().enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    st_assert!(q.cancel(*k), "cancel of live event must succeed");
                } else {
                    expected += 1;
                }
            }
            let mut seen = 0;
            while q.pop().is_some() {
                seen += 1;
            }
            st_assert_eq!(seen, expected);
            Ok(())
        },
    );
}

/// Arbitrary interleavings of schedule/cancel/pop stay in lock-step with
/// a brute-force reference model: `peek_time` always reports the live
/// minimum, `len` counts exactly the live entries, pops come out in
/// (time, FIFO) order, and cancelled entries never surface. Exercises the
/// tombstone sweep and the amortized compaction across mixed traffic.
#[test]
fn event_queue_interleaving_matches_reference_model() {
    let ops = vec_of(zip2(Gen::u64_in(0, 2), Gen::u64_in(0, 999_999)), 1, 300);
    check(
        "event_queue_interleaving_matches_reference_model",
        &ops,
        |ops| {
            let mut q = EventQueue::new();
            let mut keys = Vec::new(); // insertion index -> cancellation key
            let mut model: Vec<Option<u64>> = Vec::new(); // index -> live time
            let live_min = |model: &[Option<u64>]| {
                model
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| t.map(|t| (t, i)))
                    .min()
            };
            for &(op, arg) in ops {
                let min = live_min(&model);
                st_assert_eq!(
                    q.peek_time(),
                    min.map(|(t, _)| Nanos(t)),
                    "peek reports the live minimum"
                );
                st_assert_eq!(q.len(), model.iter().flatten().count());
                match op {
                    0 => {
                        keys.push(q.schedule(Nanos(arg), model.len()));
                        model.push(Some(arg));
                    }
                    1 => {
                        let live: Vec<usize> = model
                            .iter()
                            .enumerate()
                            .filter_map(|(i, t)| t.map(|_| i))
                            .collect();
                        if live.is_empty() {
                            st_assert!(q.pop().is_none(), "empty queue has nothing to pop");
                            continue;
                        }
                        let i = live[(arg % live.len() as u64) as usize];
                        st_assert!(q.cancel(keys[i]), "cancel of a live entry succeeds");
                        st_assert!(!q.cancel(keys[i]), "double cancel is rejected");
                        model[i] = None;
                    }
                    _ => match min {
                        None => st_assert!(q.pop().is_none(), "empty queue has nothing to pop"),
                        Some((t, i)) => {
                            let (pt, pi) = q.pop().expect("model says an entry is pending");
                            st_assert_eq!((pt, pi), (Nanos(t), i), "pop follows (time, FIFO) order");
                            st_assert!(!q.cancel(keys[i]), "cancel after pop is rejected");
                            model[i] = None;
                        }
                    },
                }
            }
            while let Some((t, i)) = q.pop() {
                let min = live_min(&model);
                st_assert_eq!(Some((t.0, i)), min, "drain order");
                model[i] = None;
            }
            st_assert!(
                model.iter().all(Option::is_none),
                "every live model entry was drained"
            );
            st_assert_eq!(q.storage_len(), 0, "drained queue holds no tombstones");
            Ok(())
        },
    );
}

#[test]
fn event_queue_matches_sorted_vec_reference_across_horizons() {
    // Differential test against a naive sorted-vec model, with offsets
    // drawn from three horizon classes that each stress a different tier
    // of the timing wheel: inside one bucket, across the near wheel's
    // span, and far beyond it (the overflow heap). Pops drag the wheel's
    // cursor forward so migrations between tiers happen mid-sequence.
    let ops = vec_of(
        zip3(Gen::u64_in(0, 5), Gen::u64_in(0, 2), Gen::u64_in(0, u64::MAX / 2)),
        1,
        400,
    );
    check(
        "event_queue_matches_sorted_vec_reference_across_horizons",
        &ops,
        |ops| {
            let mut q = EventQueue::new();
            // Reference model: a flat vec of (time, seq, id), popped by
            // scanning for the (time, seq) minimum.
            let mut model: Vec<(u64, u64, usize)> = Vec::new();
            let mut keys = Vec::new();
            let mut seq: u64 = 0;
            let mut now: u64 = 0;
            for &(op, class, raw) in ops {
                let ref_min = model.iter().min().copied();
                st_assert_eq!(
                    q.peek_time(),
                    ref_min.map(|(t, _, _)| Nanos(t)),
                    "peek reports the reference minimum"
                );
                st_assert_eq!(q.len(), model.len());
                match op {
                    0..=2 => {
                        let horizon = match class {
                            0 => raw % 2_048,       // within one wheel bucket
                            1 => raw % 1_100_000,   // across the near wheel
                            _ => raw % 100_000_000, // far overflow
                        };
                        let t = now + horizon;
                        keys.push(q.schedule(Nanos(t), keys.len()));
                        model.push((t, seq, keys.len() - 1));
                        seq += 1;
                    }
                    3 => {
                        if model.is_empty() {
                            continue;
                        }
                        let pick = (raw % model.len() as u64) as usize;
                        let (_, _, id) = model.swap_remove(pick);
                        st_assert!(q.cancel(keys[id]), "cancel of a live entry succeeds");
                        st_assert!(!q.cancel(keys[id]), "double cancel is rejected");
                    }
                    _ => match ref_min {
                        None => st_assert!(q.pop().is_none(), "empty queue has nothing to pop"),
                        Some(m) => {
                            let (t, _, id) = m;
                            let (pt, pid) = q.pop().expect("reference has a pending entry");
                            st_assert_eq!(
                                (pt, pid),
                                (Nanos(t), id),
                                "pop follows (time, seq) order"
                            );
                            let pos = model.iter().position(|e| *e == m).unwrap();
                            model.swap_remove(pos);
                            now = t;
                        }
                    },
                }
            }
            model.sort();
            for &(t, _, id) in &model {
                st_assert_eq!(
                    q.pop(),
                    Some((Nanos(t), id)),
                    "drain follows the sorted reference"
                );
            }
            st_assert!(q.pop().is_none(), "both empty after drain");
            st_assert_eq!(q.storage_len(), 0, "drained queue retains no storage");
            Ok(())
        },
    );
}

#[test]
fn rng_streams_are_reproducible() {
    check("rng_streams_are_reproducible", &Gen::u64_any(), |&seed| {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..64 {
            st_assert_eq!(a.next_u64(), b.next_u64());
        }
        Ok(())
    });
}

#[test]
fn online_stats_match_naive_computation() {
    let xs = vec_of(Gen::f64_in(-1e6, 1e6), 2, 199);
    check("online_stats_match_naive_computation", &xs, |xs| {
        let mut s = OnlineStats::new();
        for &x in xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        st_assert!(
            (s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()),
            "mean drifted: welford {} vs naive {mean}",
            s.mean()
        );
        st_assert!(
            (s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()),
            "variance drifted: welford {} vs naive {var}",
            s.variance()
        );
        Ok(())
    });
}

#[test]
fn summary_min_max_bound_mean() {
    let xs = vec_of(Gen::f64_in(0.0, 1e6), 1, 99);
    check("summary_min_max_bound_mean", &xs, |xs| {
        let mut s = Summary::new();
        for &x in xs {
            s.record(x);
        }
        st_assert!(s.min() <= s.mean() + 1e-9, "min {} > mean {}", s.min(), s.mean());
        st_assert!(s.mean() <= s.max() + 1e-9, "mean {} > max {}", s.mean(), s.max());
        st_assert_eq!(s.count(), xs.len() as u64);
        Ok(())
    });
}

// ----------------------------------------------------------------------
// coord: wire codec and registry
// ----------------------------------------------------------------------

#[test]
fn wire_codec_roundtrips() {
    check("wire_codec_roundtrips", &domain::coord_msg(), |msg| {
        let mut buf = Vec::new();
        let n = wire::encode(msg, &mut buf);
        st_assert_eq!(n, buf.len());
        st_assert!(n <= 16, "messages stay mailbox-sized: {n} bytes");
        let (decoded, used) = wire::decode(&buf).map_err(|e| format!("decode failed: {e:?}"))?;
        st_assert_eq!(decoded, *msg);
        st_assert_eq!(used, n);
        Ok(())
    });
}

#[test]
fn wire_codec_streams_roundtrip() {
    check("wire_codec_streams_roundtrip", &domain::coord_msgs(), |msgs| {
        let mut buf = Vec::new();
        for m in msgs {
            wire::encode(m, &mut buf);
        }
        let mut off = 0;
        for m in msgs {
            let (d, n) =
                wire::decode(&buf[off..]).map_err(|e| format!("decode failed: {e:?}"))?;
            st_assert_eq!(d, *m);
            off += n;
        }
        st_assert_eq!(off, buf.len());
        Ok(())
    });
}

#[test]
fn truncated_wire_messages_never_panic() {
    let input = zip2(domain::coord_msg(), Gen::u64_in(0, 15));
    check("truncated_wire_messages_never_panic", &input, |(msg, cut)| {
        let mut buf = Vec::new();
        let n = wire::encode(msg, &mut buf);
        let cut = (*cut as usize).min(n.saturating_sub(1));
        // Decoding any strict prefix errors cleanly.
        st_assert!(
            wire::decode(&buf[..cut]).is_err() || cut == 0 && n == 0,
            "decoding a {cut}-byte prefix of a {n}-byte message succeeded"
        );
        Ok(())
    });
}

#[test]
fn framed_wire_prefixes_never_decode() {
    // Every tag — including the tag-6 reliable-delivery frame — rejects
    // every strict prefix of its encoding with a clean error, under both
    // the plain and the framed decoder.
    let input = zip2(zip2(domain::coord_msg(), Gen::u32_any()), Gen::u64_in(0, 63));
    check("framed_wire_prefixes_never_decode", &input, |((msg, seq), cut)| {
        let mut plain = Vec::new();
        let n = wire::encode(msg, &mut plain);
        let c = (*cut as usize) % n;
        st_assert!(
            wire::decode(&plain[..c]).is_err(),
            "plain decode of a {c}-byte prefix of a {n}-byte message succeeded"
        );
        st_assert!(
            wire::decode_framed(&plain[..c]).is_err(),
            "framed decode of a {c}-byte plain prefix succeeded"
        );

        let mut framed = Vec::new();
        let fl = wire::encode_framed(*seq, msg, &mut framed);
        let (s, d, used) =
            wire::decode_framed(&framed).map_err(|e| format!("frame round-trip failed: {e:?}"))?;
        st_assert_eq!(s, *seq);
        st_assert_eq!(d, *msg);
        st_assert_eq!(used, fl);
        // The plain decoder never accepts a frame (tag namespaces stay
        // disjoint), and neither decoder accepts a strict frame prefix.
        st_assert!(wire::decode(&framed).is_err(), "plain decode accepted a frame");
        let fc = (*cut as usize) % fl;
        st_assert!(
            wire::decode_framed(&framed[..fc]).is_err(),
            "framed decode of a {fc}-byte prefix of a {fl}-byte frame succeeded"
        );
        st_assert!(
            wire::decode(&framed[..fc]).is_err(),
            "plain decode of a {fc}-byte frame prefix succeeded"
        );
        Ok(())
    });
}

#[test]
fn arbitrary_bytes_never_panic_the_wire_decoders() {
    // Decoding untrusted bytes either errors or reports a consumed length
    // within bounds; it never panics.
    let bytes = vec_of(Gen::u64_in(0, 255).map(|b| b as u8), 0, 40);
    check("arbitrary_bytes_never_panic_the_wire_decoders", &bytes, |bytes| {
        if let Ok((_, used)) = wire::decode(bytes) {
            st_assert!(used <= bytes.len(), "decode used {used} of {}", bytes.len());
        }
        if let Ok((_, _, used)) = wire::decode_framed(bytes) {
            st_assert!(used <= bytes.len(), "decode_framed used {used} of {}", bytes.len());
        }
        if let Ok((_, _, _, _, used)) = wire::decode_envelope(bytes) {
            st_assert!(used <= bytes.len(), "decode_envelope used {used} of {}", bytes.len());
        }
        Ok(())
    });
}

#[test]
fn registry_is_bijective() {
    let bindings = vec_of(
        zip3(Gen::u32_any(), Gen::u16_in(0, 7), Gen::u64_any()),
        1,
        99,
    );
    check("registry_is_bijective", &bindings, |bindings| {
        let mut r = Registry::new();
        let mut accepted = Vec::new();
        for &(e, i, k) in bindings {
            if r.bind(EntityId(e), IslandId(i), k).is_ok() {
                accepted.push((EntityId(e), IslandId(i), k));
            }
        }
        for (e, i, k) in &accepted {
            st_assert_eq!(
                r.local_key(*e, *i)
                    .map_err(|e| format!("accepted binding lost: {e:?}"))?,
                *k
            );
            st_assert_eq!(r.entity_of(*i, *k), Some(*e));
        }
        st_assert_eq!(r.len(), accepted.len());
        Ok(())
    });
}

#[test]
fn token_bucket_respects_long_run_rate() {
    let input = zip3(
        Gen::f64_in(1.0, 1000.0),
        Gen::f64_in(1.0, 100.0),
        Gen::u64_in(100, 1999),
    );
    check(
        "token_bucket_respects_long_run_rate",
        &input,
        |&(rate, burst, attempts)| {
            let mut b = TokenBucket::new(rate, burst);
            let horizon = Nanos::from_secs(10);
            let step = Nanos(horizon.as_nanos() / attempts);
            let mut taken = 0u64;
            let mut t = Nanos::ZERO;
            for _ in 0..attempts {
                if b.try_take(t) {
                    taken += 1;
                }
                t += step;
            }
            let bound = rate * 10.0 + burst + 1.0;
            st_assert!((taken as f64) <= bound, "{taken} > {bound}");
            Ok(())
        },
    );
}

// ----------------------------------------------------------------------
// ixp: thread pool conservation
// ----------------------------------------------------------------------

#[test]
fn thread_pool_conserves_packets() {
    let input = zip3(
        Gen::u32_in(1, 7),
        Gen::u64_in(100, 9_999),
        vec_of(domain::packet_len(), 1, 199),
    );
    check(
        "thread_pool_conserves_packets",
        &input,
        |(threads, capacity, lens)| {
            let mut pool = ThreadPool::new(*threads, Nanos::ZERO, *capacity);
            let mut in_service = 0u64;
            for (i, &len) in lens.iter().enumerate() {
                let pkt = Packet::new(i as u64, 0, len, AppTag::Plain);
                if pool.offer(pkt).is_some() {
                    in_service += 1;
                }
            }
            // offered = in_service + queued + dropped
            st_assert_eq!(
                lens.len() as u64,
                in_service + pool.queue_len() as u64 + pool.dropped()
            );
            st_assert!(
                pool.queued_bytes() <= *capacity,
                "queue overflowed its byte capacity: {} > {capacity}",
                pool.queued_bytes()
            );
            // Drain: every completion may start a queued packet.
            let mut completed = 0u64;
            while in_service > 0 {
                if pool.finish_one().is_some() {
                    in_service += 1; // a queued packet started
                }
                in_service -= 1;
                completed += 1;
            }
            st_assert_eq!(completed, pool.served());
            st_assert_eq!(completed + pool.dropped(), lens.len() as u64);
            st_assert_eq!(pool.queue_len(), 0);
            Ok(())
        },
    );
}

// ----------------------------------------------------------------------
// xsched: weight-proportional fairness under saturation
// ----------------------------------------------------------------------

#[test]
fn credit_scheduler_is_weight_proportional() {
    let weights = zip2(domain::weight(), domain::weight());
    check_with(
        &Config::with_cases(16),
        "credit_scheduler_is_weight_proportional",
        &weights,
        |&(wa, wb)| {
            let mut s = CreditScheduler::new(SchedConfig::new(1));
            let a = s.create_domain("a", wa, 1);
            let b = s.create_domain("b", wb, 1);
            s.submit(Nanos::ZERO, a, Burst::user(Nanos::from_secs(30), 1), WakeMode::Plain)
                .map_err(|e| format!("submit a: {e:?}"))?;
            s.submit(Nanos::ZERO, b, Burst::user(Nanos::from_secs(30), 2), WakeMode::Plain)
                .map_err(|e| format!("submit b: {e:?}"))?;
            let mut evs = Vec::new();
            while let Some(t) = s.next_event_time() {
                if t > Nanos::from_secs(10) {
                    break;
                }
                evs.clear();
                s.on_timer(t, &mut evs);
            }
            let snap = s.usage_snapshot();
            let ua = snap.cpu_percent(a);
            let ub = snap.cpu_percent(b);
            let expect_a = 100.0 * wa as f64 / (wa + wb) as f64;
            st_assert!((ua + ub - 100.0).abs() < 3.0, "work conserving: {}", ua + ub);
            st_assert!(
                (ua - expect_a).abs() < 8.0,
                "a got {ua}% of cpu, expected ~{expect_a}% (weights {wa}:{wb})"
            );
            Ok(())
        },
    );
}

// ----------------------------------------------------------------------
// harness self-check: a forced failure must print a reproducible seed
// ----------------------------------------------------------------------

/// Not one of the twelve ported properties: verifies the acceptance
/// criterion that a failing property reports a `SIMTEST_SEED` which
/// regenerates the exact counterexample.
#[test]
fn forced_failure_reports_reproducible_seed() {
    let gen = vec_of(Gen::u64_in(0, 99), 1, 20);
    let failing = |v: &Vec<u64>| -> Result<(), String> {
        st_assert!(v.iter().sum::<u64>() < 40, "sum too large: {v:?}");
        Ok(())
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        check_with(&Config::with_cases(200), "forced_failure_demo", &gen, failing);
    }));
    let msg = *result
        .expect_err("the property must fail")
        .downcast::<String>()
        .expect("simtest panics with a String");
    // Extract the reported seed and replay it: the regenerated case must
    // fail the same way.
    let seed: u64 = msg
        .split("SIMTEST_SEED=")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no seed in failure message: {msg}"));
    let replayed = gen.sample(&mut SimRng::new(seed));
    assert!(
        failing(&replayed).is_err(),
        "seed {seed} did not reproduce the failing case (got {replayed:?})"
    );
}
