//! Property-based tests over the core data structures and invariants.

use archipelago::coord::{wire, CoordMsg, EntityId, IslandId, IslandKind, Registry, TokenBucket};
use archipelago::ixp::{AppTag, Packet, ThreadPool};
use archipelago::simcore::stats::{OnlineStats, Summary};
use archipelago::simcore::{EventQueue, Nanos, SimRng};
use archipelago::xsched::{Burst, CreditScheduler, SchedConfig, WakeMode};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// simcore
// ----------------------------------------------------------------------

proptest! {
    #[test]
    fn event_queue_pops_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos(t), i);
        }
        let mut last = None;
        let mut popped = 0;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt, "time order");
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO among ties");
                }
            }
            prop_assert_eq!(Nanos(times[idx]), t, "event carries its scheduled time");
            last = Some((t, idx));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn event_queue_cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let keys: Vec<_> = times.iter().map(|&t| q.schedule(Nanos(t), t)).collect();
        let mut expected = 0;
        for (i, k) in keys.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*k));
            } else {
                expected += 1;
            }
        }
        let mut seen = 0;
        while q.pop().is_some() {
            seen += 1;
        }
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn online_stats_match_naive_computation(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
    }

    #[test]
    fn summary_min_max_bound_mean(xs in prop::collection::vec(0f64..1e6, 1..100)) {
        let mut s = Summary::new();
        for &x in &xs {
            s.record(x);
        }
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert_eq!(s.count(), xs.len() as u64);
    }
}

// ----------------------------------------------------------------------
// coord: wire codec and registry
// ----------------------------------------------------------------------

fn arb_msg() -> impl Strategy<Value = CoordMsg> {
    let kind = prop_oneof![
        Just(IslandKind::GeneralPurpose),
        Just(IslandKind::NetworkProcessor),
        Just(IslandKind::Accelerator),
        Just(IslandKind::Storage),
    ];
    let target = prop_oneof![
        Just(None),
        (0u16..u16::MAX).prop_map(|i| Some(IslandId(i))),
    ];
    prop_oneof![
        (any::<u16>(), kind).prop_map(|(i, kind)| CoordMsg::RegisterIsland {
            island: IslandId(i),
            kind
        }),
        (any::<u32>(), any::<u16>(), any::<u64>()).prop_map(|(e, i, k)| {
            CoordMsg::RegisterEntity { entity: EntityId(e), island: IslandId(i), local_key: k }
        }),
        (any::<u32>(), any::<i32>(), target.clone())
            .prop_map(|(e, d, t)| CoordMsg::Tune { entity: EntityId(e), delta: d, target: t }),
        (any::<u32>(), target).prop_map(|(e, t)| CoordMsg::Trigger { entity: EntityId(e), target: t }),
        any::<u32>().prop_map(|s| CoordMsg::Ack { seq: s }),
    ]
}

proptest! {
    #[test]
    fn wire_codec_roundtrips(msg in arb_msg()) {
        let mut buf = Vec::new();
        let n = wire::encode(&msg, &mut buf);
        prop_assert_eq!(n, buf.len());
        prop_assert!(n <= 16, "messages stay mailbox-sized");
        let (decoded, used) = wire::decode(&buf).unwrap();
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(used, n);
    }

    #[test]
    fn wire_codec_streams_roundtrip(msgs in prop::collection::vec(arb_msg(), 1..50)) {
        let mut buf = Vec::new();
        for m in &msgs {
            wire::encode(m, &mut buf);
        }
        let mut off = 0;
        for m in &msgs {
            let (d, n) = wire::decode(&buf[off..]).unwrap();
            prop_assert_eq!(d, *m);
            off += n;
        }
        prop_assert_eq!(off, buf.len());
    }

    #[test]
    fn truncated_wire_messages_never_panic(msg in arb_msg(), cut in 0usize..16) {
        let mut buf = Vec::new();
        let n = wire::encode(&msg, &mut buf);
        let cut = cut.min(n.saturating_sub(1));
        // Decoding any strict prefix errors cleanly.
        prop_assert!(wire::decode(&buf[..cut]).is_err() || cut == 0 && n == 0);
    }

    #[test]
    fn registry_is_bijective(bindings in prop::collection::vec((any::<u32>(), 0u16..8, any::<u64>()), 1..100)) {
        let mut r = Registry::new();
        let mut accepted = Vec::new();
        for (e, i, k) in bindings {
            if r.bind(EntityId(e), IslandId(i), k).is_ok() {
                accepted.push((EntityId(e), IslandId(i), k));
            }
        }
        for (e, i, k) in &accepted {
            prop_assert_eq!(r.local_key(*e, *i).unwrap(), *k);
            prop_assert_eq!(r.entity_of(*i, *k), Some(*e));
        }
        prop_assert_eq!(r.len(), accepted.len());
    }

    #[test]
    fn token_bucket_respects_long_run_rate(
        rate in 1.0f64..1000.0,
        burst in 1.0f64..100.0,
        attempts in 100usize..2000,
    ) {
        let mut b = TokenBucket::new(rate, burst);
        let horizon = Nanos::from_secs(10);
        let step = Nanos(horizon.as_nanos() / attempts as u64);
        let mut taken = 0u64;
        let mut t = Nanos::ZERO;
        for _ in 0..attempts {
            if b.try_take(t) {
                taken += 1;
            }
            t += step;
        }
        let bound = rate * 10.0 + burst + 1.0;
        prop_assert!((taken as f64) <= bound, "{taken} > {bound}");
    }
}

// ----------------------------------------------------------------------
// ixp: thread pool conservation
// ----------------------------------------------------------------------

proptest! {
    #[test]
    fn thread_pool_conserves_packets(
        threads in 1u32..8,
        capacity in 100u64..10_000,
        lens in prop::collection::vec(1u32..2000, 1..200),
    ) {
        let mut pool = ThreadPool::new(threads, Nanos::ZERO, capacity);
        let mut in_service = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            let pkt = Packet::new(i as u64, 0, len, AppTag::Plain);
            if pool.offer(pkt).is_some() {
                in_service += 1;
            }
        }
        // offered = in_service + queued + dropped
        prop_assert_eq!(
            lens.len() as u64,
            in_service + pool.queue_len() as u64 + pool.dropped()
        );
        prop_assert!(pool.queued_bytes() <= capacity);
        // Drain: every completion may start a queued packet.
        let mut completed = 0u64;
        while in_service > 0 {
            if pool.finish_one().is_some() {
                in_service += 1; // a queued packet started
            }
            in_service -= 1;
            completed += 1;
        }
        prop_assert_eq!(completed, pool.served());
        prop_assert_eq!(completed + pool.dropped(), lens.len() as u64);
        prop_assert_eq!(pool.queue_len(), 0);
    }
}

// ----------------------------------------------------------------------
// xsched: weight-proportional fairness under saturation
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn credit_scheduler_is_weight_proportional(
        wa in 64u32..1024,
        wb in 64u32..1024,
    ) {
        let mut s = CreditScheduler::new(SchedConfig::new(1));
        let a = s.create_domain("a", wa, 1);
        let b = s.create_domain("b", wb, 1);
        s.submit(Nanos::ZERO, a, Burst::user(Nanos::from_secs(30), 1), WakeMode::Plain).unwrap();
        s.submit(Nanos::ZERO, b, Burst::user(Nanos::from_secs(30), 2), WakeMode::Plain).unwrap();
        while let Some(t) = s.next_event_time() {
            if t > Nanos::from_secs(10) {
                break;
            }
            s.on_timer(t);
        }
        let snap = s.usage_snapshot();
        let ua = snap.cpu_percent(a);
        let ub = snap.cpu_percent(b);
        let expect_a = 100.0 * wa as f64 / (wa + wb) as f64;
        prop_assert!((ua + ub - 100.0).abs() < 3.0, "work conserving: {}", ua + ub);
        prop_assert!(
            (ua - expect_a).abs() < 8.0,
            "a got {ua}% of cpu, expected ~{expect_a}% (weights {wa}:{wb})"
        );
    }
}
