//! Properties for the island-facing subsystems: PCIe host-link
//! flow-control/ordering, power-governor cap behaviour, and the batching
//! accelerator's request conservation.

use accel::{AccelConfig, AccelEvent, AccelIsland, AccelRequest, TenantId};
use archipelago::simcore::Nanos;
use coord::{EntityId, ResourceManager};
use ixp::{AppTag, FlowId, Packet};
use pcie::{HostLink, LinkConfig, NotifyMode, PcieEvent};
use power::{DomainSample, PowerGovernor, Strategy};
use simtest::gen::{domain, vec_of, zip2, zip3, Gen};
use simtest::{check, st_assert, st_assert_eq};

fn pkt(id: u64, len: u32) -> Packet {
    Packet::new(id, 0, len, AppTag::Plain)
}

/// Pump the link's internal clock forward, collecting every event.
fn settle(link: &mut HostLink, until: Nanos) -> Vec<PcieEvent> {
    let mut out = Vec::new();
    while let Some(t) = link.next_event_time() {
        if t > until {
            break;
        }
        link.on_timer(t, &mut out);
    }
    out
}

/// One `on_timer` step, collected into a fresh buffer.
fn timer_events(link: &mut HostLink, now: Nanos) -> Vec<PcieEvent> {
    let mut out = Vec::new();
    link.on_timer(now, &mut out);
    out
}

// ----------------------------------------------------------------------
// pcie::link — flow control and ordering
// ----------------------------------------------------------------------

/// Every descriptor offered to the link is accounted for exactly once:
/// while running, `posted >= drained + ring`; once the link settles and the
/// host drains everything, `posted == drained` and every post attempt is
/// either posted or a ring-full drop.
#[test]
fn pcie_link_conserves_descriptors() {
    let input = zip3(
        Gen::u32_in(1, 64),                                // ring slots
        vec_of(domain_post(), 1, 149),                     // (gap, len) per post
        Gen::u64_in(1, 16),                                // host_take batch size
    );
    check(
        "pcie_link_conserves_descriptors",
        &input,
        |(slots, posts, batch)| {
            let cfg = LinkConfig {
                ring_slots: *slots,
                ..LinkConfig::default()
            };
            let mut link = HostLink::new(cfg);
            let mut now = Nanos::ZERO;
            for (i, &(gap_us, len)) in posts.iter().enumerate() {
                now += Nanos::from_micros(gap_us);
                link.post_to_host(now, FlowId(0), pkt(i as u64, len));
                // Interleave servicing so the ring occupancy varies: on a
                // notification, the host drains a bounded batch.
                for ev in timer_events(&mut link, now) {
                    if let PcieEvent::HostNotify { at, .. } = ev {
                        link.host_take(at, *batch as usize);
                    }
                }
                let s = link.stats();
                st_assert!(
                    s.posted >= s.drained + link.ring_len() as u64,
                    "mid-run under-accounting: posted {} < drained {} + ring {}",
                    s.posted,
                    s.drained,
                    link.ring_len()
                );
            }
            // Let all in-flight DMAs land, then drain the residue.
            let far = now + Nanos::from_secs(1);
            settle(&mut link, far);
            link.host_take(far, usize::MAX);
            let s = link.stats();
            st_assert_eq!(
                s.posted + s.ring_full_drops,
                posts.len() as u64,
                "every attempt is posted or dropped"
            );
            st_assert_eq!(s.posted, s.drained, "settled link conserves descriptors");
            st_assert_eq!(link.ring_len(), 0);
            Ok(())
        },
    );
}

/// Equal-length packets posted at strictly increasing times drain from the
/// host ring in posting (FIFO) order, even across partial drains and
/// ring-full drops.
#[test]
fn pcie_link_drains_in_fifo_order() {
    let input = zip3(
        Gen::u32_in(1, 32),     // ring slots
        Gen::u64_in(2, 99),     // packets posted
        Gen::u64_in(1, 8),      // host_take batch size
    );
    check(
        "pcie_link_drains_in_fifo_order",
        &input,
        |&(slots, count, batch)| {
            let cfg = LinkConfig {
                ring_slots: slots,
                ..LinkConfig::default()
            };
            let mut link = HostLink::new(cfg);
            let mut drained_ids = Vec::new();
            let mut take = |link: &mut HostLink, at: Nanos| {
                drained_ids.extend(
                    link.host_take(at, batch as usize)
                        .into_iter()
                        .map(|(_, p)| p.id),
                );
            };
            let mut now = Nanos::ZERO;
            for id in 0..count {
                now += Nanos::from_micros(10);
                link.post_to_host(now, FlowId(0), pkt(id, 256));
                for ev in timer_events(&mut link, now) {
                    if let PcieEvent::HostNotify { at, .. } = ev {
                        take(&mut link, at);
                    }
                }
            }
            let far = now + Nanos::from_secs(1);
            for ev in settle(&mut link, far) {
                if let PcieEvent::HostNotify { at, .. } = ev {
                    take(&mut link, at);
                }
            }
            while link.ring_len() > 0 {
                take(&mut link, far);
            }
            st_assert!(
                drained_ids.windows(2).all(|w| w[0] < w[1]),
                "ids drained out of order: {drained_ids:?}"
            );
            let s = link.stats();
            st_assert_eq!(drained_ids.len() as u64, s.drained);
            Ok(())
        },
    );
}

/// Interrupt moderation: consecutive host notifications are spaced at
/// least the moderation period apart, no matter how the IXP posts.
#[test]
fn pcie_link_moderates_interrupt_rate() {
    let input = zip3(
        Gen::u64_in(10, 500),                          // moderation period, µs
        vec_of(Gen::u64_in(0, 200), 2, 99),            // inter-post gaps, µs
        Gen::u64_in(1, 4),                             // host_take batch size
    );
    check(
        "pcie_link_moderates_interrupt_rate",
        &input,
        |(period_us, gaps, batch)| {
            let period = Nanos::from_micros(*period_us);
            let cfg = LinkConfig {
                notify: NotifyMode::Interrupt { period },
                ..LinkConfig::default()
            };
            let mut link = HostLink::new(cfg);
            let mut notify_times = Vec::new();
            let mut now = Nanos::ZERO;
            for (i, &gap) in gaps.iter().enumerate() {
                now += Nanos::from_micros(gap);
                link.post_to_host(now, FlowId(0), pkt(i as u64, 128));
                for ev in timer_events(&mut link, now) {
                    if let PcieEvent::HostNotify { at, .. } = ev {
                        notify_times.push(at);
                        link.host_take(at, *batch as usize);
                    }
                }
            }
            for ev in settle(&mut link, now + Nanos::from_secs(1)) {
                if let PcieEvent::HostNotify { at, .. } = ev {
                    notify_times.push(at);
                    link.host_take(at, usize::MAX);
                }
            }
            for w in notify_times.windows(2) {
                st_assert!(
                    w[1] >= w[0] + period,
                    "notifications {:?} and {:?} closer than the {period:?} \
                     moderation period",
                    w[0],
                    w[1]
                );
            }
            st_assert_eq!(notify_times.len() as u64, link.stats().notifications);
            Ok(())
        },
    );
}

// ----------------------------------------------------------------------
// power::governor — cap monotonicity under sustained pressure
// ----------------------------------------------------------------------

/// Under sustained over-budget samples the governor only ever tightens:
/// each domain's effective cap is non-increasing across rounds, never falls
/// below the configured floor, and capped domains stay within [floor, 100).
#[test]
fn power_caps_monotone_under_sustained_pressure() {
    let input = zip2(
        zip3(
            Gen::u32_in(5, 40),  // cap step
            Gen::u32_in(1, 30),  // cap floor
            Gen::bool_any(),     // strategy: biggest-consumer vs priority
        ),
        vec_of(
            zip3(
                Gen::u32_in(0, 100),
                Gen::u32_in(0, 100),
                Gen::u32_in(0, 100),
            ),
            3,
            29,
        ),
    );
    check(
        "power_caps_monotone_under_sustained_pressure",
        &input,
        |((step, floor, priority), rounds)| {
            let names = ["web", "db", "background"];
            let strategy = if *priority {
                Strategy::Priority(names.iter().map(|n| n.to_string()).collect())
            } else {
                Strategy::BiggestConsumer
            };
            let mut g = PowerGovernor::new(100.0, strategy).with_steps(*step, *floor);
            // 0 means uncapped; treat it as "no limit" for monotonicity.
            let eff = |c: u32| if c == 0 { u32::MAX } else { c };
            for (i, &(a, b, c)) in rounds.iter().enumerate() {
                let before: Vec<u32> = names.iter().map(|n| g.cap_of(n)).collect();
                let samples: Vec<DomainSample> = names
                    .iter()
                    .zip([a, b, c])
                    .map(|(n, cpu)| DomainSample {
                        name: n.to_string(),
                        cpu_percent: cpu as f64,
                    })
                    .collect();
                // Always 20 W over budget; rounds are a second apart so the
                // rate limiter never masks a decision.
                g.sample(Nanos::from_secs(i as u64 + 1), 120.0, &samples);
                for (name, was) in names.iter().zip(before) {
                    let is = g.cap_of(name);
                    st_assert!(
                        eff(is) <= eff(was),
                        "cap for {name} loosened under pressure: {was} -> {is}"
                    );
                    st_assert!(
                        is == 0 || (is >= *floor && is < 100),
                        "cap for {name} out of range: {is} (floor {floor})"
                    );
                }
            }
            Ok(())
        },
    );
}

/// Generator for one host-bound post: (inter-post gap in µs, payload len).
fn domain_post() -> Gen<(u64, u32)> {
    zip2(Gen::u64_in(0, 99), simtest::gen::domain::packet_len())
}

// ----------------------------------------------------------------------
// accel — batching accelerator request conservation
// ----------------------------------------------------------------------

/// Whatever tenant mix is offered, the accelerator conserves requests:
/// every submission is rejected synchronously or eventually completed,
/// launched batch items sum to completions, and the device-memory pool
/// drains back to zero once the island idles. A mid-run Trigger (forced
/// partial launch) must not break any of it.
#[test]
fn accel_conserves_requests_across_tenant_mixes() {
    check(
        "accel_conserves_requests_across_tenant_mixes",
        &domain::inference_mix(),
        |mix| {
            let cfg = AccelConfig {
                // A small pool so heavy mixes exercise the rejection path.
                hbm_capacity: 256 * 1024,
                ..AccelConfig::default()
            };
            let mut acc = AccelIsland::new(cfg);
            let tenants: Vec<TenantId> =
                (0..mix.len()).map(|i| acc.register_tenant(i as u32 + 1)).collect();

            // Deterministic open-loop schedule: up to 30 requests per
            // tenant at its mean inter-arrival gap, merged in time order.
            let mut subs: Vec<(Nanos, usize, u64)> = Vec::new();
            let mut id = 0u64;
            for (t, m) in mix.iter().enumerate() {
                let gap = 1_000_000_000 / m.rate_per_sec as u64;
                for k in 0..(m.rate_per_sec as u64).min(30) {
                    id += 1;
                    subs.push((Nanos(gap * (k + 1)), t, id));
                }
            }
            subs.sort_unstable();

            let mut events: Vec<AccelEvent> = Vec::new();
            let mut offered = vec![0u64; mix.len()];
            let mut accepted = vec![0u64; mix.len()];
            let trigger_at = subs.len() / 2;
            for (n, &(at, t, rid)) in subs.iter().enumerate() {
                while let Some(ts) = acc.next_event_time() {
                    if ts > at {
                        break;
                    }
                    acc.on_timer(ts, &mut events);
                }
                if n == trigger_at {
                    // Tenant 0's entity key is its index, as the platform
                    // binds it.
                    let mgr: &mut dyn ResourceManager = &mut acc;
                    mgr.apply_trigger(at, EntityId(0))
                        .map_err(|e| format!("trigger rejected: {e:?}"))?;
                }
                offered[t] += 1;
                let req = AccelRequest {
                    id: rid,
                    tenant: tenants[t],
                    cost: mix[t].cost,
                    bytes: mix[t].bytes as u64,
                };
                if acc.submit(at, req) {
                    accepted[t] += 1;
                }
            }
            // Drain to idle.
            while let Some(ts) = acc.next_event_time() {
                acc.on_timer(ts, &mut events);
            }

            let mut seen = std::collections::HashSet::new();
            let mut completed_events = vec![0u64; mix.len()];
            for ev in &events {
                if let AccelEvent::Completed { id, tenant, batch_size, .. } = ev {
                    st_assert!(seen.insert(*id), "request {id} completed twice");
                    st_assert!(*batch_size >= 1, "empty batch completed");
                    completed_events[tenant.0 as usize] += 1;
                }
            }
            for (t, m) in mix.iter().enumerate() {
                let s = acc.stats(tenants[t]).ok_or("tenant stats missing")?;
                st_assert_eq!(s.submitted, accepted[t], "tenant {t} submissions");
                st_assert_eq!(s.submitted + s.rejected, offered[t], "tenant {t} conservation");
                st_assert_eq!(s.completed, s.submitted, "tenant {t} drained");
                st_assert_eq!(s.completed, completed_events[t], "tenant {t} events");
                st_assert_eq!(s.batch_items, s.completed, "tenant {t} batch items");
                if s.batches > 0 {
                    st_assert!(
                        s.batch_items.div_ceil(s.batches) <= AccelConfig::default().max_batch as u64,
                        "tenant {t} mean batch exceeds max_batch"
                    );
                }
                st_assert!(s.preemptions <= s.batches, "tenant {t} preemptions bound");
                st_assert_eq!(acc.queue_depth(tenants[t]), 0, "tenant {t} queue drained");
                let _ = m;
            }
            st_assert_eq!(acc.hbm_used(), 0, "device memory leaked");
            Ok(())
        },
    );
}
